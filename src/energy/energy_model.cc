#include "energy/energy_model.hh"

#include <iomanip>

namespace flexsnoop
{

std::string_view
toString(EnergyEvent e)
{
    switch (e) {
      case EnergyEvent::RingLinkMessage: return "ring_link_message";
      case EnergyEvent::CmpSnoop: return "cmp_snoop";
      case EnergyEvent::PredictorAccess: return "predictor_access";
      case EnergyEvent::PredictorTrain: return "predictor_train";
      case EnergyEvent::DowngradeCacheOp: return "downgrade_cache_op";
      case EnergyEvent::DowngradeWriteback: return "downgrade_writeback";
      case EnergyEvent::DowngradeReRead: return "downgrade_reread";
      case EnergyEvent::GlobalRingLinkMessage:
        return "global_ring_link_message";
      case EnergyEvent::BridgePredictorAccess:
        return "bridge_predictor_access";
      case EnergyEvent::BridgePredictorTrain:
        return "bridge_predictor_train";
      case EnergyEvent::NumEvents: break;
    }
    return "?";
}

double
EnergyParams::perEventNj(EnergyEvent e) const
{
    switch (e) {
      case EnergyEvent::RingLinkMessage: return ringLinkMessageNj;
      case EnergyEvent::CmpSnoop: return cmpSnoopNj;
      case EnergyEvent::PredictorAccess: return predictorAccessNj;
      case EnergyEvent::PredictorTrain: return predictorTrainNj;
      case EnergyEvent::DowngradeCacheOp: return downgradeCacheOpNj;
      case EnergyEvent::DowngradeWriteback: return dramLineNj;
      case EnergyEvent::DowngradeReRead: return dramLineNj;
      case EnergyEvent::GlobalRingLinkMessage:
        return globalRingLinkMessageNj;
      case EnergyEvent::BridgePredictorAccess:
        return bridgePredictorAccessNj;
      case EnergyEvent::BridgePredictorTrain:
        return bridgePredictorTrainNj;
      case EnergyEvent::NumEvents: break;
    }
    return 0.0;
}

double
EnergyModel::totalNj() const
{
    double total = 0.0;
    for (std::size_t i = 0; i < kNumEnergyEvents; ++i) {
        const auto e = static_cast<EnergyEvent>(i);
        total += categoryNj(e);
    }
    return total;
}

void
EnergyModel::dump(std::ostream &os) const
{
    os << "energy breakdown (nJ):\n";
    for (std::size_t i = 0; i < kNumEnergyEvents; ++i) {
        const auto e = static_cast<EnergyEvent>(i);
        os << "  " << std::left << std::setw(25) << toString(e)
           << " count=" << std::setw(12) << count(e)
           << " energy=" << categoryNj(e) << '\n';
    }
    os << "  total = " << totalNj() << " nJ\n";
}

} // namespace flexsnoop
