/**
 * @file
 * Experiment helpers used by the benches: algorithm sweeps over workload
 * suites, Lazy-normalization, SPLASH-2 aggregation (the paper uses the
 * arithmetic mean for Fig. 6 and the geometric mean of per-application
 * Lazy-normalized values for Figs. 7-9), and table printing.
 */

#ifndef FLEXSNOOP_CORE_EXPERIMENT_HH
#define FLEXSNOOP_CORE_EXPERIMENT_HH

#include <functional>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "core/simulation.hh"
#include "workload/profile.hh"

namespace flexsnoop
{

/** Extract one metric from a RunResult. */
using Metric = std::function<double(const RunResult &)>;

/** Results of a full algorithm sweep over one workload. */
struct SweepResult
{
    std::string workload;
    std::vector<RunResult> runs; ///< one per algorithm, sweep order

    const RunResult &byAlgorithm(Algorithm a) const;
};

/**
 * Run @p algorithms (with their §6.1 default predictors) on the
 * workload described by @p profile.
 *
 * @param override_predictor if non-empty, forces this predictor config
 *        on every algorithm that uses one (sensitivity studies)
 */
SweepResult runSweep(const std::vector<Algorithm> &algorithms,
                     const WorkloadProfile &profile,
                     const std::string &override_predictor = "");

/** Run one (algorithm, predictor-name) pair on @p profile. */
RunResult runOne(Algorithm algorithm, const WorkloadProfile &profile,
                 const std::string &predictor_name = "");

/** Arithmetic mean of @p metric over a set of runs. */
double arithMean(const std::vector<double> &values);

/** Geometric mean (values must be positive). */
double geoMean(const std::vector<double> &values);

/**
 * Aggregate a per-application suite into the paper's SPLASH-2 bar:
 * metric(app, algo) / metric(app, Lazy), geometric mean over apps.
 */
double lazyNormalizedGeoMean(const std::vector<SweepResult> &apps,
                             Algorithm algorithm, const Metric &metric);

/** Arithmetic mean of a raw metric over apps for one algorithm. */
double suiteArithMean(const std::vector<SweepResult> &apps,
                      Algorithm algorithm, const Metric &metric);

/**
 * Pretty-print a workloads x algorithms table of doubles.
 *
 * @param rows (workload label, algorithm -> value)
 */
void printTable(std::ostream &os, const std::string &title,
                const std::vector<Algorithm> &algorithms,
                const std::vector<std::pair<
                    std::string, std::map<Algorithm, double>>> &rows,
                int precision = 3);

} // namespace flexsnoop

#endif // FLEXSNOOP_CORE_EXPERIMENT_HH
