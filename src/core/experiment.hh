/**
 * @file
 * Experiment helpers used by the benches: algorithm sweeps over workload
 * suites, Lazy-normalization, SPLASH-2 aggregation (the paper uses the
 * arithmetic mean for Fig. 6 and the geometric mean of per-application
 * Lazy-normalized values for Figs. 7-9), and table printing.
 */

#ifndef FLEXSNOOP_CORE_EXPERIMENT_HH
#define FLEXSNOOP_CORE_EXPERIMENT_HH

#include <functional>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "core/simulation.hh"
#include "workload/profile.hh"

namespace flexsnoop
{

/** Extract one metric from a RunResult. */
using Metric = std::function<double(const RunResult &)>;

/** Results of a full algorithm sweep over one workload. */
struct SweepResult
{
    std::string workload;
    std::vector<RunResult> runs; ///< one per algorithm, sweep order

    const RunResult &byAlgorithm(Algorithm a) const;
};

/**
 * Machine configuration one sweep cell runs with: the §6.1 paper
 * default for @p algorithm sized to @p profile, with
 * @p override_predictor (if non-empty and of the same predictor kind)
 * forced on — the sensitivity-study hook shared by every sweep entry
 * point.
 */
MachineConfig sweepConfig(Algorithm algorithm,
                          const WorkloadProfile &profile,
                          const std::string &override_predictor = "");

/**
 * Run @p algorithms (with their §6.1 default predictors) on the
 * workload described by @p profile.
 *
 * @param override_predictor if non-empty, forces this predictor config
 *        on every algorithm that uses one (sensitivity studies)
 */
SweepResult runSweep(const std::vector<Algorithm> &algorithms,
                     const WorkloadProfile &profile,
                     const std::string &override_predictor = "");

/**
 * runSweep() with the per-algorithm runs executed concurrently on
 * @p jobs worker threads. Each run owns its machine, so the result is
 * bit-identical to the serial sweep; only wall-clock time changes.
 */
SweepResult runSweepParallel(const std::vector<Algorithm> &algorithms,
                             const WorkloadProfile &profile,
                             std::size_t jobs,
                             const std::string &override_predictor = "");

/**
 * Full suite sweep: every (profile x algorithm) cell, executed across
 * @p jobs worker threads. Traces are generated once per profile and
 * shared by all of that profile's algorithms (the paper compares
 * algorithms on identical traces). Results are returned in @p profiles
 * order, each sweep in @p algorithms order — identical to calling
 * runSweep() per profile in a loop.
 */
std::vector<SweepResult>
runMatrix(const std::vector<Algorithm> &algorithms,
          const std::vector<WorkloadProfile> &profiles, std::size_t jobs,
          const std::string &override_predictor = "");

/** Run one (algorithm, predictor-name) pair on @p profile. */
RunResult runOne(Algorithm algorithm, const WorkloadProfile &profile,
                 const std::string &predictor_name = "");

/**
 * One cell of a hardened sweep: a fully-resolved machine configuration
 * plus the (shared, caller-owned) traces it replays. @p traces must
 * outlive the runCellsHardened() call.
 */
struct PlannedCell
{
    MachineConfig cfg;
    const CoreTraces *traces = nullptr;
    std::string workload;
};

/** Robustness options of runCellsHardened() (docs/FAULTS.md). */
struct SweepHardening
{
    /**
     * Per-cell wall-clock budget in seconds (0 = none). Applied to any
     * cell that does not already set guards.wallClockLimitSec.
     */
    double cellWallClockLimitSec = 0.0;

    /**
     * Incremental checkpoint CSV (empty = off). Each successful cell
     * appends its row immediately; on a re-run, cells whose
     * (workload, algorithm, predictor) key is already present are
     * served from the file instead of re-simulated. Failed cells are
     * never checkpointed, so a resume retries them.
     */
    std::string checkpointPath;

    /** Directory for stuck-transaction dumps (empty = don't write). */
    std::string dumpDir;

    /**
     * Structured JSON-lines progress log (docs/TELEMETRY.md, empty =
     * off): cell start/finish events with status, wall time, ETA and
     * peak RSS, mirroring the checkpoint CSV's per-cell flushing.
     */
    std::string sweepLogPath;
};

/**
 * Run every cell across @p jobs workers with crash isolation: a cell
 * that throws (stuck simulation, retry storm, coherence violation) is
 * returned as a RunResult with failed=true and the message in `error`,
 * and the other cells run to completion. Results are in @p cells order.
 */
std::vector<RunResult>
runCellsHardened(const std::vector<PlannedCell> &cells, std::size_t jobs,
                 const SweepHardening &hardening);

/** One cell of the hierarchical-topology scaling sweep. */
struct HierSweepCell
{
    std::size_t numCmps = 0;
    bool hier = false;          ///< false = flat-ring baseline
    std::size_t localRings = 1; ///< numCmps / 8 when hier
    RunResult result;
};

/**
 * Scalability sweep (docs/TOPOLOGY.md): for each node count in
 * @p node_counts, run every algorithm on the same traces twice — once
 * on the flat embedded ring and once on a two-level hierarchy with
 * 8-node local rings (local_rings = N/8) — so hier-vs-flat is an
 * apples-to-apples comparison per (node count, algorithm). Every node
 * count must be a multiple of 8, at least 16, so the hierarchy has at
 * least two local rings. Cells are returned in node_counts x
 * {flat, hier} x algorithms order.
 *
 * @param base workload template; its numCores is replaced by the
 *        swept node count (x coresPerCmp) per cell. The footprint is
 *        weak-scaled: sharedLines grows linearly with the core factor
 *        and meanGap by factor^0.75, keeping per-line contention
 *        bounded (the base footprint hammered by 64+ cores collapses
 *        into retry storms on every algorithm, flat or hier).
 */
std::vector<HierSweepCell>
runHierSweep(const std::vector<Algorithm> &algorithms,
             const std::vector<std::size_t> &node_counts,
             std::size_t jobs, Cycle global_hop_cycles = 62,
             const WorkloadProfile &base = miniProfile());

/** Arithmetic mean of @p metric over a set of runs. */
double arithMean(const std::vector<double> &values);

/** Geometric mean (values must be positive). */
double geoMean(const std::vector<double> &values);

/**
 * Aggregate a per-application suite into the paper's SPLASH-2 bar:
 * metric(app, algo) / metric(app, Lazy), geometric mean over apps.
 */
double lazyNormalizedGeoMean(const std::vector<SweepResult> &apps,
                             Algorithm algorithm, const Metric &metric);

/** Arithmetic mean of a raw metric over apps for one algorithm. */
double suiteArithMean(const std::vector<SweepResult> &apps,
                      Algorithm algorithm, const Metric &metric);

/**
 * Pretty-print a workloads x algorithms table of doubles.
 *
 * @param rows (workload label, algorithm -> value)
 */
void printTable(std::ostream &os, const std::string &title,
                const std::vector<Algorithm> &algorithms,
                const std::vector<std::pair<
                    std::string, std::map<Algorithm, double>>> &rows,
                int precision = 3);

} // namespace flexsnoop

#endif // FLEXSNOOP_CORE_EXPERIMENT_HH
