#include "core/experiment.hh"

#include <cassert>
#include <cctype>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>

#include "core/parallel_executor.hh"
#include "core/report.hh"
#include "core/sweep_log.hh"
#include "workload/synthetic_generator.hh"

namespace flexsnoop
{

const RunResult &
SweepResult::byAlgorithm(Algorithm a) const
{
    for (const auto &r : runs) {
        if (r.algorithm == toString(a))
            return r;
    }
    throw std::out_of_range("algorithm not present in sweep: " +
                            std::string(toString(a)));
}

MachineConfig
sweepConfig(Algorithm algorithm, const WorkloadProfile &profile,
            const std::string &override_predictor)
{
    MachineConfig cfg =
        MachineConfig::paperDefault(algorithm, profile.coresPerCmp);
    cfg.setNumCmps(profile.numCmps());
    if (!override_predictor.empty() &&
        cfg.predictor.kind != PredictorKind::None &&
        cfg.predictor.kind != PredictorKind::Perfect) {
        PredictorConfig forced =
            PredictorConfig::fromName(override_predictor);
        if (forced.kind == cfg.predictor.kind)
            cfg.predictor = forced;
    }
    return cfg;
}

RunResult
runOne(Algorithm algorithm, const WorkloadProfile &profile,
       const std::string &predictor_name)
{
    SyntheticGenerator gen(profile);
    return runSimulation(sweepConfig(algorithm, profile, predictor_name),
                         gen.generate(), profile.name);
}

SweepResult
runSweep(const std::vector<Algorithm> &algorithms,
         const WorkloadProfile &profile,
         const std::string &override_predictor)
{
    // Generate the traces once; every algorithm replays the same refs
    // (the paper: "we compare the different snooping algorithms with
    // exactly the same traces").
    SyntheticGenerator gen(profile);
    const CoreTraces traces = gen.generate();

    SweepResult sweep;
    sweep.workload = profile.name;
    for (Algorithm a : algorithms) {
        sweep.runs.push_back(
            runSimulation(sweepConfig(a, profile, override_predictor),
                          traces, profile.name));
    }
    return sweep;
}

SweepResult
runSweepParallel(const std::vector<Algorithm> &algorithms,
                 const WorkloadProfile &profile, std::size_t jobs,
                 const std::string &override_predictor)
{
    return std::move(
        runMatrix(algorithms, {profile}, jobs, override_predictor)
            .front());
}

std::vector<SweepResult>
runMatrix(const std::vector<Algorithm> &algorithms,
          const std::vector<WorkloadProfile> &profiles, std::size_t jobs,
          const std::string &override_predictor)
{
    ParallelExecutor pool(jobs);

    // Traces are generated once per profile and shared by all of that
    // profile's runs; generation itself is independent per profile, so
    // it parallelizes too.
    std::vector<CoreTraces> traces =
        pool.map(profiles.size(), [&profiles](std::size_t p) {
            SyntheticGenerator gen(profiles[p]);
            return gen.generate();
        });

    // Flatten the (profile x algorithm) matrix into one job batch so a
    // slow profile does not serialize behind a fast one.
    const std::size_t width = algorithms.size();
    std::vector<RunResult> runs = pool.map(
        profiles.size() * width, [&](std::size_t cell) {
            const std::size_t p = cell / width;
            const Algorithm a = algorithms[cell % width];
            return runSimulation(
                sweepConfig(a, profiles[p], override_predictor),
                traces[p], profiles[p].name);
        });

    std::vector<SweepResult> out(profiles.size());
    for (std::size_t p = 0; p < profiles.size(); ++p) {
        out[p].workload = profiles[p].name;
        out[p].runs.reserve(width);
        for (std::size_t i = 0; i < width; ++i)
            out[p].runs.push_back(std::move(runs[p * width + i]));
    }
    return out;
}

std::vector<HierSweepCell>
runHierSweep(const std::vector<Algorithm> &algorithms,
             const std::vector<std::size_t> &node_counts,
             std::size_t jobs, Cycle global_hop_cycles,
             const WorkloadProfile &base)
{
    ParallelExecutor pool(jobs);

    // One scaled profile per node count; the flat and hier machines of
    // a node count replay the same traces.
    std::vector<WorkloadProfile> profiles;
    profiles.reserve(node_counts.size());
    for (std::size_t n : node_counts) {
        if (n < 16 || n % 8 != 0) {
            throw std::invalid_argument(
                "hier sweep node counts must be multiples of 8, >= 16; "
                "got " + std::to_string(n));
        }
        WorkloadProfile p = base;
        p.name = "scale" + std::to_string(n);
        p.numCores = n * p.coresPerCmp; // n CMP nodes on the ring
        // Weak scaling: grow the shared pool with the machine and
        // thin out each core's issue rate so per-line contention stays
        // bounded -- with the base footprint, the hottest shared lines
        // of a 64+-core machine collapse into retry storms on every
        // algorithm, flat or hierarchical.
        if (base.numCores > 0 && p.numCores > base.numCores) {
            const double f = static_cast<double>(p.numCores) /
                             static_cast<double>(base.numCores);
            p.sharedLines = static_cast<std::size_t>(
                static_cast<double>(base.sharedLines) * f);
            p.meanGap = base.meanGap * std::pow(f, 0.75);
        }
        profiles.push_back(p);
    }

    std::vector<CoreTraces> traces =
        pool.map(profiles.size(), [&profiles](std::size_t p) {
            SyntheticGenerator gen(profiles[p]);
            return gen.generate();
        });

    const std::size_t width = algorithms.size();
    const std::size_t per_count = 2 * width; // flat row then hier row
    std::vector<RunResult> runs = pool.map(
        node_counts.size() * per_count, [&](std::size_t cell) {
            const std::size_t p = cell / per_count;
            const bool hier = cell % per_count >= width;
            const Algorithm a = algorithms[cell % width];
            MachineConfig cfg = sweepConfig(a, profiles[p]);
            if (hier) {
                cfg.topology.kind = TopologyKind::Hier;
                cfg.topology.localRings = node_counts[p] / 8;
                cfg.topology.globalHopCycles = global_hop_cycles;
            }
            return runSimulation(cfg, traces[p], profiles[p].name);
        });

    std::vector<HierSweepCell> out;
    out.reserve(runs.size());
    for (std::size_t i = 0; i < runs.size(); ++i) {
        HierSweepCell c;
        c.numCmps = node_counts[i / per_count];
        c.hier = i % per_count >= width;
        c.localRings = c.hier ? c.numCmps / 8 : 1;
        c.result = std::move(runs[i]);
        out.push_back(std::move(c));
    }
    return out;
}

namespace
{

/** Resume key: a cell is identified by what writeCsvRow records. */
std::string
cellKey(const std::string &workload, const std::string &algorithm,
        const std::string &predictor)
{
    return workload + '\x1f' + algorithm + '\x1f' + predictor;
}

std::string
sanitizeFileComponent(std::string s)
{
    for (char &c : s) {
        if (!std::isalnum(static_cast<unsigned char>(c)) && c != '-' &&
            c != '_')
            c = '_';
    }
    return s;
}

} // namespace

std::vector<RunResult>
runCellsHardened(const std::vector<PlannedCell> &cells, std::size_t jobs,
                 const SweepHardening &hardening)
{
    // Resume: rows already checkpointed by a previous (partial) sweep
    // are reused verbatim. Only successful rows ever reach the file,
    // so failed cells are retried automatically.
    std::map<std::string, RunResult> resumed;
    if (!hardening.checkpointPath.empty()) {
        for (RunResult &r : loadCsvFile(hardening.checkpointPath)) {
            if (!r.failed) {
                std::string key =
                    cellKey(r.workload, r.algorithm, r.predictor);
                resumed.emplace(std::move(key), std::move(r));
            }
        }
    }

    std::ofstream checkpoint;
    std::mutex checkpoint_mutex;
    if (!hardening.checkpointPath.empty()) {
        // Rewrite rather than append: resumed rows are re-emitted below
        // as their cells complete, and rows of cells no longer in the
        // plan must not linger.
        checkpoint.open(hardening.checkpointPath, std::ios::trunc);
        if (!checkpoint) {
            throw std::runtime_error("cannot open checkpoint file: " +
                                     hardening.checkpointPath);
        }
        writeCsvHeader(checkpoint);
        checkpoint.flush();
    }

    std::unique_ptr<SweepLog> sweep_log;
    if (!hardening.sweepLogPath.empty()) {
        sweep_log = std::make_unique<SweepLog>(hardening.sweepLogPath,
                                               cells.size());
    }

    std::vector<RunResult> out(cells.size());
    std::vector<ParallelExecutor::Job> batch;
    batch.reserve(cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i) {
        batch.push_back([&, i]() {
            const PlannedCell &cell = cells[i];
            MachineConfig cfg = cell.cfg;
            if (hardening.cellWallClockLimitSec > 0 &&
                cfg.guards.wallClockLimitSec == 0)
                cfg.guards.wallClockLimitSec =
                    hardening.cellWallClockLimitSec;

            const std::string algorithm(toString(cfg.algorithm));
            if (sweep_log) {
                sweep_log->cellStart(i, cell.workload, algorithm,
                                     cfg.predictor.id);
            }
            const auto wall_start = std::chrono::steady_clock::now();
            const auto cellWallSec = [wall_start]() {
                return std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - wall_start)
                    .count();
            };
            const auto logFinish = [&](SweepLog::Status status) {
                if (sweep_log) {
                    sweep_log->cellFinish(i, cell.workload, algorithm,
                                          cfg.predictor.id, status,
                                          cellWallSec());
                }
            };

            const std::string key =
                cellKey(cell.workload, algorithm, cfg.predictor.id);
            try {
                if (auto it = resumed.find(key); it != resumed.end()) {
                    out[i] = it->second;
                    logFinish(SweepLog::Status::Resumed);
                } else {
                    assert(cell.traces && "planned cell without traces");
                    out[i] =
                        runSimulation(cfg, *cell.traces, cell.workload);
                    logFinish(SweepLog::Status::Ok);
                }
            } catch (const SimulationStuckError &e) {
                logFinish(e.kind() == SimulationStuckError::Kind::Timeout
                              ? SweepLog::Status::Timeout
                              : SweepLog::Status::Failed);
                throw;
            } catch (...) {
                logFinish(SweepLog::Status::Failed);
                throw;
            }

            if (checkpoint.is_open()) {
                std::lock_guard<std::mutex> lock(checkpoint_mutex);
                writeCsvRow(checkpoint, out[i]);
                checkpoint.flush();
            }
        });
    }

    ParallelExecutor pool(jobs);
    const auto errors = pool.runCollect(batch);
    if (sweep_log)
        sweep_log->finish();

    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (!errors[i])
            continue;
        RunResult &r = out[i];
        r = RunResult{};
        r.workload = cells[i].workload;
        r.algorithm = std::string(toString(cells[i].cfg.algorithm));
        r.predictor = cells[i].cfg.predictor.id;
        r.failed = true;
        std::string dump;
        try {
            std::rethrow_exception(errors[i]);
        } catch (const SimulationStuckError &e) {
            r.error = e.what();
            dump = e.stuckDump();
        } catch (const std::exception &e) {
            r.error = e.what();
        } catch (...) {
            r.error = "unknown error";
        }
        if (!hardening.dumpDir.empty() && !dump.empty()) {
            std::filesystem::create_directories(hardening.dumpDir);
            const std::string path =
                hardening.dumpDir + "/stuck_cell" + std::to_string(i) +
                "_" + sanitizeFileComponent(r.workload) + "_" +
                sanitizeFileComponent(r.algorithm) + ".txt";
            std::ofstream df(path);
            if (df)
                df << r.error << "\n\n" << dump;
        }
    }
    return out;
}

double
arithMean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

double
geoMean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values) {
        assert(v > 0.0 && "geometric mean needs positive values");
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

double
lazyNormalizedGeoMean(const std::vector<SweepResult> &apps,
                      Algorithm algorithm, const Metric &metric)
{
    std::vector<double> ratios;
    ratios.reserve(apps.size());
    for (const auto &app : apps) {
        const double base = metric(app.byAlgorithm(Algorithm::Lazy));
        const double value = metric(app.byAlgorithm(algorithm));
        assert(base > 0.0);
        ratios.push_back(value / base);
    }
    return geoMean(ratios);
}

double
suiteArithMean(const std::vector<SweepResult> &apps, Algorithm algorithm,
               const Metric &metric)
{
    std::vector<double> values;
    values.reserve(apps.size());
    for (const auto &app : apps)
        values.push_back(metric(app.byAlgorithm(algorithm)));
    return arithMean(values);
}

void
printTable(std::ostream &os, const std::string &title,
           const std::vector<Algorithm> &algorithms,
           const std::vector<
               std::pair<std::string, std::map<Algorithm, double>>> &rows,
           int precision)
{
    os << '\n' << title << '\n';
    os << std::left << std::setw(14) << "workload";
    for (Algorithm a : algorithms)
        os << std::right << std::setw(13) << toString(a);
    os << '\n';
    os << std::string(14 + 13 * algorithms.size(), '-') << '\n';
    for (const auto &[label, values] : rows) {
        os << std::left << std::setw(14) << label;
        for (Algorithm a : algorithms) {
            auto it = values.find(a);
            if (it == values.end()) {
                os << std::right << std::setw(13) << "-";
            } else {
                os << std::right << std::setw(13) << std::fixed
                   << std::setprecision(precision) << it->second;
            }
        }
        os << '\n';
    }
    os.unsetf(std::ios::fixed);
}

} // namespace flexsnoop
