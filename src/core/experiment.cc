#include "core/experiment.hh"

#include <cassert>
#include <cmath>
#include <iomanip>
#include <stdexcept>

#include "workload/synthetic_generator.hh"

namespace flexsnoop
{

const RunResult &
SweepResult::byAlgorithm(Algorithm a) const
{
    for (const auto &r : runs) {
        if (r.algorithm == toString(a))
            return r;
    }
    throw std::out_of_range("algorithm not present in sweep: " +
                            std::string(toString(a)));
}

RunResult
runOne(Algorithm algorithm, const WorkloadProfile &profile,
       const std::string &predictor_name)
{
    MachineConfig cfg =
        MachineConfig::paperDefault(algorithm, profile.coresPerCmp);
    cfg.setNumCmps(profile.numCmps());
    if (!predictor_name.empty() &&
        cfg.predictor.kind != PredictorKind::None &&
        cfg.predictor.kind != PredictorKind::Perfect) {
        PredictorConfig forced = PredictorConfig::fromName(predictor_name);
        if (forced.kind == cfg.predictor.kind)
            cfg.predictor = forced;
    }
    SyntheticGenerator gen(profile);
    return runSimulation(cfg, gen.generate(), profile.name);
}

SweepResult
runSweep(const std::vector<Algorithm> &algorithms,
         const WorkloadProfile &profile,
         const std::string &override_predictor)
{
    // Generate the traces once; every algorithm replays the same refs
    // (the paper: "we compare the different snooping algorithms with
    // exactly the same traces").
    SyntheticGenerator gen(profile);
    const CoreTraces traces = gen.generate();

    SweepResult sweep;
    sweep.workload = profile.name;
    for (Algorithm a : algorithms) {
        MachineConfig cfg =
            MachineConfig::paperDefault(a, profile.coresPerCmp);
        cfg.setNumCmps(profile.numCmps());
        if (!override_predictor.empty() &&
            cfg.predictor.kind != PredictorKind::None &&
            cfg.predictor.kind != PredictorKind::Perfect) {
            PredictorConfig forced =
                PredictorConfig::fromName(override_predictor);
            if (forced.kind == cfg.predictor.kind)
                cfg.predictor = forced;
        }
        sweep.runs.push_back(runSimulation(cfg, traces, profile.name));
    }
    return sweep;
}

double
arithMean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

double
geoMean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values) {
        assert(v > 0.0 && "geometric mean needs positive values");
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

double
lazyNormalizedGeoMean(const std::vector<SweepResult> &apps,
                      Algorithm algorithm, const Metric &metric)
{
    std::vector<double> ratios;
    ratios.reserve(apps.size());
    for (const auto &app : apps) {
        const double base = metric(app.byAlgorithm(Algorithm::Lazy));
        const double value = metric(app.byAlgorithm(algorithm));
        assert(base > 0.0);
        ratios.push_back(value / base);
    }
    return geoMean(ratios);
}

double
suiteArithMean(const std::vector<SweepResult> &apps, Algorithm algorithm,
               const Metric &metric)
{
    std::vector<double> values;
    values.reserve(apps.size());
    for (const auto &app : apps)
        values.push_back(metric(app.byAlgorithm(algorithm)));
    return arithMean(values);
}

void
printTable(std::ostream &os, const std::string &title,
           const std::vector<Algorithm> &algorithms,
           const std::vector<
               std::pair<std::string, std::map<Algorithm, double>>> &rows,
           int precision)
{
    os << '\n' << title << '\n';
    os << std::left << std::setw(14) << "workload";
    for (Algorithm a : algorithms)
        os << std::right << std::setw(13) << toString(a);
    os << '\n';
    os << std::string(14 + 13 * algorithms.size(), '-') << '\n';
    for (const auto &[label, values] : rows) {
        os << std::left << std::setw(14) << label;
        for (Algorithm a : algorithms) {
            auto it = values.find(a);
            if (it == values.end()) {
                os << std::right << std::setw(13) << "-";
            } else {
                os << std::right << std::setw(13) << std::fixed
                   << std::setprecision(precision) << it->second;
            }
        }
        os << '\n';
    }
    os.unsetf(std::ios::fixed);
}

} // namespace flexsnoop
