#include "core/experiment.hh"

#include <cassert>
#include <cmath>
#include <iomanip>
#include <stdexcept>

#include "core/parallel_executor.hh"
#include "workload/synthetic_generator.hh"

namespace flexsnoop
{

const RunResult &
SweepResult::byAlgorithm(Algorithm a) const
{
    for (const auto &r : runs) {
        if (r.algorithm == toString(a))
            return r;
    }
    throw std::out_of_range("algorithm not present in sweep: " +
                            std::string(toString(a)));
}

MachineConfig
sweepConfig(Algorithm algorithm, const WorkloadProfile &profile,
            const std::string &override_predictor)
{
    MachineConfig cfg =
        MachineConfig::paperDefault(algorithm, profile.coresPerCmp);
    cfg.setNumCmps(profile.numCmps());
    if (!override_predictor.empty() &&
        cfg.predictor.kind != PredictorKind::None &&
        cfg.predictor.kind != PredictorKind::Perfect) {
        PredictorConfig forced =
            PredictorConfig::fromName(override_predictor);
        if (forced.kind == cfg.predictor.kind)
            cfg.predictor = forced;
    }
    return cfg;
}

RunResult
runOne(Algorithm algorithm, const WorkloadProfile &profile,
       const std::string &predictor_name)
{
    SyntheticGenerator gen(profile);
    return runSimulation(sweepConfig(algorithm, profile, predictor_name),
                         gen.generate(), profile.name);
}

SweepResult
runSweep(const std::vector<Algorithm> &algorithms,
         const WorkloadProfile &profile,
         const std::string &override_predictor)
{
    // Generate the traces once; every algorithm replays the same refs
    // (the paper: "we compare the different snooping algorithms with
    // exactly the same traces").
    SyntheticGenerator gen(profile);
    const CoreTraces traces = gen.generate();

    SweepResult sweep;
    sweep.workload = profile.name;
    for (Algorithm a : algorithms) {
        sweep.runs.push_back(
            runSimulation(sweepConfig(a, profile, override_predictor),
                          traces, profile.name));
    }
    return sweep;
}

SweepResult
runSweepParallel(const std::vector<Algorithm> &algorithms,
                 const WorkloadProfile &profile, std::size_t jobs,
                 const std::string &override_predictor)
{
    return std::move(
        runMatrix(algorithms, {profile}, jobs, override_predictor)
            .front());
}

std::vector<SweepResult>
runMatrix(const std::vector<Algorithm> &algorithms,
          const std::vector<WorkloadProfile> &profiles, std::size_t jobs,
          const std::string &override_predictor)
{
    ParallelExecutor pool(jobs);

    // Traces are generated once per profile and shared by all of that
    // profile's runs; generation itself is independent per profile, so
    // it parallelizes too.
    std::vector<CoreTraces> traces =
        pool.map(profiles.size(), [&profiles](std::size_t p) {
            SyntheticGenerator gen(profiles[p]);
            return gen.generate();
        });

    // Flatten the (profile x algorithm) matrix into one job batch so a
    // slow profile does not serialize behind a fast one.
    const std::size_t width = algorithms.size();
    std::vector<RunResult> runs = pool.map(
        profiles.size() * width, [&](std::size_t cell) {
            const std::size_t p = cell / width;
            const Algorithm a = algorithms[cell % width];
            return runSimulation(
                sweepConfig(a, profiles[p], override_predictor),
                traces[p], profiles[p].name);
        });

    std::vector<SweepResult> out(profiles.size());
    for (std::size_t p = 0; p < profiles.size(); ++p) {
        out[p].workload = profiles[p].name;
        out[p].runs.reserve(width);
        for (std::size_t i = 0; i < width; ++i)
            out[p].runs.push_back(std::move(runs[p * width + i]));
    }
    return out;
}

double
arithMean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

double
geoMean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values) {
        assert(v > 0.0 && "geometric mean needs positive values");
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

double
lazyNormalizedGeoMean(const std::vector<SweepResult> &apps,
                      Algorithm algorithm, const Metric &metric)
{
    std::vector<double> ratios;
    ratios.reserve(apps.size());
    for (const auto &app : apps) {
        const double base = metric(app.byAlgorithm(Algorithm::Lazy));
        const double value = metric(app.byAlgorithm(algorithm));
        assert(base > 0.0);
        ratios.push_back(value / base);
    }
    return geoMean(ratios);
}

double
suiteArithMean(const std::vector<SweepResult> &apps, Algorithm algorithm,
               const Metric &metric)
{
    std::vector<double> values;
    values.reserve(apps.size());
    for (const auto &app : apps)
        values.push_back(metric(app.byAlgorithm(algorithm)));
    return arithMean(values);
}

void
printTable(std::ostream &os, const std::string &title,
           const std::vector<Algorithm> &algorithms,
           const std::vector<
               std::pair<std::string, std::map<Algorithm, double>>> &rows,
           int precision)
{
    os << '\n' << title << '\n';
    os << std::left << std::setw(14) << "workload";
    for (Algorithm a : algorithms)
        os << std::right << std::setw(13) << toString(a);
    os << '\n';
    os << std::string(14 + 13 * algorithms.size(), '-') << '\n';
    for (const auto &[label, values] : rows) {
        os << std::left << std::setw(14) << label;
        for (Algorithm a : algorithms) {
            auto it = values.find(a);
            if (it == values.end()) {
                os << std::right << std::setw(13) << "-";
            } else {
                os << std::right << std::setw(13) << std::fixed
                   << std::setprecision(precision) << it->second;
            }
        }
        os << '\n';
    }
    os.unsetf(std::ios::fixed);
}

} // namespace flexsnoop
