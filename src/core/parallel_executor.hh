/**
 * @file
 * A small worker pool for running independent simulation jobs
 * concurrently.
 *
 * Every experiment cell (one runSimulation() call) owns its Machine and
 * EventQueue outright, so cells are share-nothing and can execute on any
 * thread. The executor exploits that: run() dispatches a batch of jobs
 * across a fixed set of worker threads and blocks until all complete.
 * Results are slotted by submission index, so a parallel sweep produces
 * bit-identical output to the serial loop regardless of which thread
 * finishes first.
 *
 * Exceptions thrown by jobs are captured per job; after the batch
 * drains, the exception of the lowest-indexed failing job is rethrown —
 * the same exception the serial loop would have surfaced first.
 */

#ifndef FLEXSNOOP_CORE_PARALLEL_EXECUTOR_HH
#define FLEXSNOOP_CORE_PARALLEL_EXECUTOR_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace flexsnoop
{

class ParallelExecutor
{
  public:
    using Job = std::function<void()>;

    /**
     * @param workers worker-thread count; 0 or 1 means serial (jobs run
     *        inline on the calling thread, no threads are spawned)
     */
    explicit ParallelExecutor(std::size_t workers = defaultWorkers());
    ~ParallelExecutor();

    ParallelExecutor(const ParallelExecutor &) = delete;
    ParallelExecutor &operator=(const ParallelExecutor &) = delete;

    /** Hardware concurrency, with a fallback of 1 when unknown. */
    static std::size_t defaultWorkers();

    /** Worker threads backing this pool (0 when serial). */
    std::size_t workers() const { return _threads.size(); }

    /**
     * Execute every job in @p jobs and block until all finish. Jobs are
     * claimed dynamically, so long and short jobs balance across
     * workers. Rethrows the first (by submission index) job exception
     * after the whole batch has drained.
     */
    void run(const std::vector<Job> &jobs);

    /**
     * Like run(), but with per-job crash isolation: every job executes
     * regardless of other jobs' failures, and nothing is rethrown. The
     * returned vector holds one entry per job, null on success and the
     * captured exception otherwise — the hardened-sweep building block
     * (one failing cell must not kill the batch).
     */
    std::vector<std::exception_ptr>
    runCollect(const std::vector<Job> &jobs);

    /**
     * Evaluate fn(0..count-1) across the pool and return the results in
     * index order. The result type must be default-constructible and
     * move-assignable.
     */
    template <typename Fn>
    auto
    map(std::size_t count, Fn &&fn)
        -> std::vector<decltype(fn(std::size_t{}))>
    {
        using R = decltype(fn(std::size_t{}));
        std::vector<R> results(count);
        std::vector<Job> jobs;
        jobs.reserve(count);
        for (std::size_t i = 0; i < count; ++i)
            jobs.push_back([&results, &fn, i]() { results[i] = fn(i); });
        run(jobs);
        return results;
    }

  private:
    void workerLoop();

    std::vector<std::thread> _threads;

    std::mutex _m;
    std::condition_variable _wake; ///< signals a new batch (or shutdown)
    std::condition_variable _done; ///< signals batch completion
    std::uint64_t _generation = 0; ///< batch sequence number
    std::size_t _running = 0;      ///< workers still in the current batch
    bool _stop = false;

    const std::vector<Job> *_jobs = nullptr;
    std::vector<std::exception_ptr> *_errors = nullptr;
    std::atomic<std::size_t> _next{0}; ///< next unclaimed job index
};

} // namespace flexsnoop

#endif // FLEXSNOOP_CORE_PARALLEL_EXECUTOR_HH
