/**
 * @file
 * String-based machine configuration: apply "key=value" overrides to a
 * MachineConfig, so command-line tools and scripts can explore the
 * design space without recompiling.
 *
 * Supported keys (see applyOverride for the full list): num_cmps,
 * cores_per_cmp, l2_entries, l2_ways, num_rings, ring_link_latency,
 * ring_serialization, mem_local_rt, mem_remote_rt, mem_prefetch_rt,
 * prefetch_enabled, cmp_snoop_time, retry_backoff, max_outstanding,
 * algorithm, predictor, write_filtering, watchdog_cycles, max_retries,
 * topology, local_rings, global_hop_cycles, global_algorithm.
 *
 * Values are validated strictly: malformed numbers are rejected with
 * the offending character position, structurally-invalid sizes (e.g.
 * num_cmps=1) name the violated bound, and unknown keys list the
 * accepted ones. applyOverrides() additionally reports which override
 * in the sequence failed.
 */

#ifndef FLEXSNOOP_CORE_CONFIG_PARSER_HH
#define FLEXSNOOP_CORE_CONFIG_PARSER_HH

#include <string>
#include <vector>

#include "core/machine_config.hh"

namespace flexsnoop
{

/**
 * Apply one "key=value" override to @p config.
 * @throws std::invalid_argument for unknown keys or malformed values
 */
void applyOverride(MachineConfig &config, const std::string &assignment);

/** Apply several overrides in order. */
void applyOverrides(MachineConfig &config,
                    const std::vector<std::string> &assignments);

/** List of keys accepted by applyOverride (for usage messages). */
const std::vector<std::string> &configKeys();

/** One-line "key=value key=value ..." rendering of @p config. */
std::string describeConfig(const MachineConfig &config);

} // namespace flexsnoop

#endif // FLEXSNOOP_CORE_CONFIG_PARSER_HH
