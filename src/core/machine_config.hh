/**
 * @file
 * Top-level machine configuration (paper Table 4) and its defaults.
 */

#ifndef FLEXSNOOP_CORE_MACHINE_CONFIG_HH
#define FLEXSNOOP_CORE_MACHINE_CONFIG_HH

#include "coherence/coherence_params.hh"
#include "energy/energy_model.hh"
#include "mem/memory_controller.hh"
#include "net/data_network.hh"
#include "net/ring.hh"
#include "predictor/predictor_config.hh"
#include "sim/fault_injector.hh"
#include "snoop/snoop_policy.hh"
#include "telemetry/metrics_sampler.hh"
#include "topology/topology.hh"
#include "trace/trace_sink.hh"
#include "workload/core_model.hh"

namespace flexsnoop
{

/**
 * Everything needed to instantiate a Machine.
 *
 * Defaults reproduce the paper's baseline: 8 CMPs on a 4x2 torus with
 * two embedded rings, 512 KB 8-way L2s, and the Table 4 latencies.
 */
struct MachineConfig
{
    std::size_t numCmps = 8;
    std::size_t coresPerCmp = 4;   ///< 4 for SPLASH-2, 1 for SPECjbb/web

    std::size_t l2Entries = 8192;  ///< 512 KB / 64 B lines
    std::size_t l2Ways = 8;

    std::size_t numRings = 2;
    RingParams ring;
    TorusParams torus;
    MemoryParams memory;
    CoherenceParams coherence;
    EnergyParams energy;
    CoreParams core;

    Algorithm algorithm = Algorithm::SupersetAgg;
    PredictorConfig predictor = PredictorConfig::superset(false, 2048);

    /**
     * Write-snoop filtering extension (paper §2.2/§5.3 sketch): each
     * gateway additionally hosts a presence predictor (counting Bloom
     * filter over all cached lines) that lets write invalidations skip
     * CMPs provably holding no copy.
     */
    bool writeFiltering = false;
    std::vector<unsigned> presenceBloomFields = {12, 8, 10};

    /**
     * Hierarchical multi-ring topology (docs/TOPOLOGY.md): when
     * topology.hierarchical(), the numCmps nodes are partitioned into
     * topology.localRings equal local rings joined by one global ring
     * of bridge gateways. Flat by default; the degenerate hier config
     * (one local ring) runs bit-identically to flat.
     */
    TopologyConfig topology;
    /** Field sizes of the bridges' aggregate counting Blooms. */
    std::vector<unsigned> bridgeBloomFields = {12, 8, 10};

    /**
     * Unreliable-ring mode (docs/FAULTS.md): when armed(), the machine
     * instantiates a FaultInjector on every ring link and predictor.
     * Disarmed by default; the machine is then built without any
     * injector and is bit-identical to a build without the hooks.
     */
    FaultConfig faults;

    /**
     * Event tracing (docs/TRACING.md): when enabled(), the machine
     * owns a TraceSink writing trace.path and installs it on the ring
     * and the controller. Disabled by default; the machine is then
     * built without a sink and every trace point is one null check.
     */
    TraceConfig trace;

    /**
     * Time-series telemetry (docs/TELEMETRY.md): when enabled(), the
     * machine owns a MetricsSampler writing metrics.path and arms the
     * event queue's sampling hook at metrics.intervalCycles. Disabled
     * by default; the machine is then built without a sampler and the
     * hook costs one never-taken compare per event. Sampling is pure
     * observation: enabling it changes no RunResult field and no
     * .fstrace byte.
     */
    MetricsConfig metrics;

    /**
     * Machine-level liveness guards used by runSimulation (docs/
     * FAULTS.md). Zero values disable each guard.
     */
    struct SimGuards
    {
        /** Abort if no core makes progress for this many cycles. */
        Cycle progressCheckCycles = 0;
        /** Abort a run exceeding this wall-clock budget (seconds). */
        double wallClockLimitSec = 0.0;
    };
    SimGuards guards;

    std::size_t numCores() const { return numCmps * coresPerCmp; }

    /**
     * Near-wheel size for the machine's EventQueue (see
     * sim/timing_wheel.hh): the smallest power of two covering twice
     * the largest single-event latency this configuration schedules on
     * its hot paths (ring hop, CMP snoop, bus and memory round trips,
     * data-network line transfers). Far-future events — watchdog
     * timeouts, retry backoffs — are meant to miss the near wheel and
     * ride the overflow levels; queue.overflow_scheduled counts them
     * so sizing can be validated against a run's horizon histogram.
     */
    std::size_t eventQueueNearBuckets() const;

    /**
     * Resize the machine to @p n CMPs, choosing a matching (roughly
     * square) torus shape.
     */
    void setNumCmps(std::size_t n);

    /**
     * Paper-default machine for @p a with its §6.1 predictor (Sub2k /
     * y2k / Exa2k / perfect / none) and @p cores_per_cmp cores.
     */
    static MachineConfig paperDefault(Algorithm a,
                                      std::size_t cores_per_cmp = 4);

    /** Small machine for fast unit tests (4 CMPs, tiny caches). */
    static MachineConfig testDefault(Algorithm a);
};

} // namespace flexsnoop

#endif // FLEXSNOOP_CORE_MACHINE_CONFIG_HH
