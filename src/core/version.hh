/**
 * @file
 * Library version.
 */

#ifndef FLEXSNOOP_CORE_VERSION_HH
#define FLEXSNOOP_CORE_VERSION_HH

namespace flexsnoop
{

constexpr int kVersionMajor = 1;
constexpr int kVersionMinor = 0;
constexpr int kVersionPatch = 0;
constexpr const char *kVersionString = "1.0.0";

} // namespace flexsnoop

#endif // FLEXSNOOP_CORE_VERSION_HH
