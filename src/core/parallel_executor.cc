#include "core/parallel_executor.hh"

namespace flexsnoop
{

std::size_t
ParallelExecutor::defaultWorkers()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

ParallelExecutor::ParallelExecutor(std::size_t workers)
{
    // A single worker buys nothing over running inline; stay serial.
    if (workers <= 1)
        return;
    _threads.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i)
        _threads.emplace_back([this]() { workerLoop(); });
}

ParallelExecutor::~ParallelExecutor()
{
    {
        std::lock_guard<std::mutex> lock(_m);
        _stop = true;
    }
    _wake.notify_all();
    for (auto &t : _threads)
        t.join();
}

void
ParallelExecutor::run(const std::vector<Job> &jobs)
{
    if (jobs.empty())
        return;

    if (_threads.empty()) {
        // Serial mode: exceptions propagate directly, which is already
        // first-by-index order.
        for (const auto &job : jobs)
            job();
        return;
    }

    auto errors = runCollect(jobs);
    for (auto &e : errors) {
        if (e)
            std::rethrow_exception(e);
    }
}

std::vector<std::exception_ptr>
ParallelExecutor::runCollect(const std::vector<Job> &jobs)
{
    std::vector<std::exception_ptr> errors(jobs.size());
    if (jobs.empty())
        return errors;

    if (_threads.empty()) {
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            try {
                jobs[i]();
            } catch (...) {
                errors[i] = std::current_exception();
            }
        }
        return errors;
    }

    {
        std::lock_guard<std::mutex> lock(_m);
        _jobs = &jobs;
        _errors = &errors;
        _next.store(0, std::memory_order_relaxed);
        _running = _threads.size();
        ++_generation;
    }
    _wake.notify_all();

    {
        std::unique_lock<std::mutex> lock(_m);
        _done.wait(lock, [this]() { return _running == 0; });
        _jobs = nullptr;
        _errors = nullptr;
    }
    return errors;
}

void
ParallelExecutor::workerLoop()
{
    std::uint64_t seen = 0;
    for (;;) {
        const std::vector<Job> *jobs = nullptr;
        std::vector<std::exception_ptr> *errors = nullptr;
        {
            std::unique_lock<std::mutex> lock(_m);
            _wake.wait(lock, [this, seen]() {
                return _stop || _generation != seen;
            });
            if (_stop)
                return;
            seen = _generation;
            jobs = _jobs;
            errors = _errors;
        }

        for (;;) {
            const std::size_t i =
                _next.fetch_add(1, std::memory_order_relaxed);
            if (i >= jobs->size())
                break;
            try {
                (*jobs)[i]();
            } catch (...) {
                (*errors)[i] = std::current_exception();
            }
        }

        {
            std::lock_guard<std::mutex> lock(_m);
            if (--_running == 0)
                _done.notify_one();
        }
    }
}

} // namespace flexsnoop
