/**
 * @file
 * One-call simulation API: run a workload trace set on a machine
 * configuration and collect every metric the paper's evaluation uses.
 */

#ifndef FLEXSNOOP_CORE_SIMULATION_HH
#define FLEXSNOOP_CORE_SIMULATION_HH

#include <cstdint>
#include <ostream>
#include <stdexcept>
#include <string>

#include "core/machine.hh"
#include "workload/core_model.hh"
#include "workload/trace.hh"

namespace flexsnoop
{

/** All figures-of-merit of one simulation run (measured phase only). */
struct RunResult
{
    std::string workload;
    std::string algorithm;
    std::string predictor;

    Cycle execCycles = 0;       ///< measured-phase duration

    // Figure 6: snoop operations per read snoop request.
    std::uint64_t readRingRequests = 0;
    std::uint64_t readSnoops = 0;
    double snoopsPerReadRequest = 0.0;

    // Figure 7: read snoop messages on the ring (link traversals).
    std::uint64_t readLinkMessages = 0;
    double readLinkMessagesPerRequest = 0.0;

    // Figure 9: snoop-related energy.
    double energyNj = 0.0;
    double ringEnergyNj = 0.0;
    double snoopEnergyNj = 0.0;
    double predictorEnergyNj = 0.0;
    double downgradeEnergyNj = 0.0;

    // Figure 11: supplier-predictor accuracy.
    std::uint64_t truePositives = 0;
    std::uint64_t trueNegatives = 0;
    std::uint64_t falsePositives = 0;
    std::uint64_t falseNegatives = 0;

    // Write-side detail (incl. the write-filtering extension).
    std::uint64_t writeRingRequests = 0;
    std::uint64_t writeSnoops = 0;
    std::uint64_t writeFiltered = 0;

    // Hierarchical topology (docs/TOPOLOGY.md); all zero on a flat or
    // degenerate (local_rings=1) ring, so flat results compare equal.
    std::uint64_t bridgeSkips = 0;     ///< whole blocks skipped at bridges
    std::uint64_t bridgeDescends = 0;  ///< bridge decisions to enter block
    std::uint64_t globalLinkMessages = 0;  ///< global-ring link traversals

    // Supporting detail.
    std::uint64_t cacheSupplies = 0;  ///< reads answered by a remote cache
    std::uint64_t memoryFetches = 0;  ///< reads/writes answered by memory
    std::uint64_t downgrades = 0;     ///< Exact forced downgrades
    std::uint64_t collisions = 0;
    std::uint64_t retries = 0;
    std::uint64_t writebacks = 0;
    double avgReadLatency = 0.0;      ///< cycles, ring transactions only
    double p50ReadLatency = 0.0;
    double p95ReadLatency = 0.0;

    // Fault injection & recovery (docs/FAULTS.md); all zero when the
    // machine runs without a fault injector.
    std::uint64_t faultLinkDecisions = 0;  ///< link sends the injector saw
    std::uint64_t faultDrops = 0;
    std::uint64_t faultDups = 0;
    std::uint64_t faultDelays = 0;
    std::uint64_t faultPredictorFlips = 0;
    std::uint64_t watchdogTimeouts = 0;
    std::uint64_t staleMessagesAbsorbed = 0;
    std::uint64_t predictorFlipDegrades = 0;
    std::uint64_t incompleteConclusionsRejected = 0;
    std::uint64_t retryStormAborts = 0;

    // Hardened-sweep bookkeeping (Experiment::runCellsHardened): a cell
    // whose run threw is recorded as failed instead of killing the
    // sweep; `error` carries the exception message.
    bool failed = false;
    std::string error;

    std::uint64_t
    predictions() const
    {
        return truePositives + trueNegatives + falsePositives +
               falseNegatives;
    }

    void dump(std::ostream &os) const;
};

/**
 * A simulation lost liveness: the event queue drained with unfinished
 * cores/transactions (deadlock), the progress monitor saw no forward
 * progress for a whole check interval (livelock), or the wall-clock
 * budget was exceeded. stuckDump() carries the full state of every
 * stuck core and in-flight transaction for post-mortem.
 */
class SimulationStuckError : public std::runtime_error
{
  public:
    /** Which guard fired (the sweep log reports them differently). */
    enum class Kind
    {
        Stuck,   ///< deadlock or livelock
        Timeout, ///< wall-clock budget exceeded
    };

    SimulationStuckError(const std::string &what, std::string dump,
                         Kind kind = Kind::Stuck)
        : std::runtime_error(what), _dump(std::move(dump)), _kind(kind)
    {
    }

    const std::string &stuckDump() const { return _dump; }
    Kind kind() const { return _kind; }

  private:
    std::string _dump;
    Kind _kind;
};

/**
 * Run @p traces on a machine built from @p config.
 *
 * Statistics and energy are reset at the warmup barrier; everything in
 * the result covers the measured phase only. The machine is checked for
 * coherence-invariant violations after the run; violations throw
 * std::runtime_error in every build type.
 *
 * @param workload_name label recorded in the result
 */
RunResult runSimulation(const MachineConfig &config,
                        const CoreTraces &traces,
                        const std::string &workload_name);

} // namespace flexsnoop

#endif // FLEXSNOOP_CORE_SIMULATION_HH
