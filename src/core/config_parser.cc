#include "core/config_parser.hh"

#include <sstream>
#include <stdexcept>

namespace flexsnoop
{

namespace
{

std::uint64_t
parseUnsigned(const std::string &key, const std::string &value)
{
    try {
        std::size_t pos = 0;
        const std::uint64_t parsed = std::stoull(value, &pos);
        if (pos != value.size())
            throw std::invalid_argument("trailing characters");
        return parsed;
    } catch (const std::exception &) {
        throw std::invalid_argument("bad unsigned value for " + key +
                                    ": '" + value + "'");
    }
}

bool
parseBool(const std::string &key, const std::string &value)
{
    if (value == "1" || value == "true" || value == "on")
        return true;
    if (value == "0" || value == "false" || value == "off")
        return false;
    throw std::invalid_argument("bad boolean value for " + key + ": '" +
                                value + "'");
}

} // namespace

const std::vector<std::string> &
configKeys()
{
    static const std::vector<std::string> kKeys = {
        "num_cmps",         "cores_per_cmp",   "l2_entries",
        "l2_ways",          "num_rings",       "ring_link_latency",
        "ring_serialization", "mem_local_rt",  "mem_remote_rt",
        "mem_prefetch_rt",  "prefetch_enabled", "cmp_snoop_time",
        "retry_backoff",    "max_outstanding", "algorithm",
        "predictor",        "write_filtering",
    };
    return kKeys;
}

void
applyOverride(MachineConfig &config, const std::string &assignment)
{
    const auto eq = assignment.find('=');
    if (eq == std::string::npos || eq == 0)
        throw std::invalid_argument("expected key=value, got '" +
                                    assignment + "'");
    const std::string key = assignment.substr(0, eq);
    const std::string value = assignment.substr(eq + 1);

    if (key == "num_cmps") {
        config.setNumCmps(
            static_cast<std::size_t>(parseUnsigned(key, value)));
    } else if (key == "cores_per_cmp") {
        config.coresPerCmp =
            static_cast<std::size_t>(parseUnsigned(key, value));
    } else if (key == "l2_entries") {
        config.l2Entries =
            static_cast<std::size_t>(parseUnsigned(key, value));
    } else if (key == "l2_ways") {
        config.l2Ways = static_cast<std::size_t>(parseUnsigned(key, value));
    } else if (key == "num_rings") {
        config.numRings =
            static_cast<std::size_t>(parseUnsigned(key, value));
    } else if (key == "ring_link_latency") {
        config.ring.linkLatency = parseUnsigned(key, value);
    } else if (key == "ring_serialization") {
        config.ring.serialization = parseUnsigned(key, value);
    } else if (key == "mem_local_rt") {
        config.memory.localRoundTrip = parseUnsigned(key, value);
    } else if (key == "mem_remote_rt") {
        config.memory.remoteRoundTrip = parseUnsigned(key, value);
    } else if (key == "mem_prefetch_rt") {
        config.memory.remotePrefetchRoundTrip = parseUnsigned(key, value);
    } else if (key == "prefetch_enabled") {
        config.memory.prefetchEnabled = parseBool(key, value);
    } else if (key == "cmp_snoop_time") {
        config.coherence.cmpSnoopTime = parseUnsigned(key, value);
    } else if (key == "retry_backoff") {
        config.coherence.retryBackoff = parseUnsigned(key, value);
    } else if (key == "max_outstanding") {
        config.core.maxOutstanding =
            static_cast<std::size_t>(parseUnsigned(key, value));
    } else if (key == "write_filtering") {
        config.writeFiltering = parseBool(key, value);
    } else if (key == "algorithm") {
        config.algorithm = algorithmFromName(value);
        config.predictor = defaultPredictorFor(config.algorithm);
    } else if (key == "predictor") {
        const PredictorConfig forced = PredictorConfig::fromName(value);
        if (forced.kind != config.predictor.kind) {
            throw std::invalid_argument(
                "predictor '" + value + "' does not match algorithm " +
                std::string(toString(config.algorithm)));
        }
        config.predictor = forced;
    } else {
        throw std::invalid_argument("unknown configuration key: " + key);
    }
}

void
applyOverrides(MachineConfig &config,
               const std::vector<std::string> &assignments)
{
    for (const auto &assignment : assignments)
        applyOverride(config, assignment);
}

std::string
describeConfig(const MachineConfig &config)
{
    std::ostringstream oss;
    oss << "algorithm=" << toString(config.algorithm)
        << " predictor=" << config.predictor.id
        << " num_cmps=" << config.numCmps
        << " cores_per_cmp=" << config.coresPerCmp
        << " l2_entries=" << config.l2Entries << " l2_ways="
        << config.l2Ways << " num_rings=" << config.numRings
        << " ring_link_latency=" << config.ring.linkLatency
        << " ring_serialization=" << config.ring.serialization
        << " cmp_snoop_time=" << config.coherence.cmpSnoopTime
        << " mem_local_rt=" << config.memory.localRoundTrip
        << " mem_remote_rt=" << config.memory.remoteRoundTrip
        << " mem_prefetch_rt=" << config.memory.remotePrefetchRoundTrip
        << " prefetch_enabled=" << config.memory.prefetchEnabled
        << " write_filtering=" << config.writeFiltering
        << " max_outstanding=" << config.core.maxOutstanding;
    return oss.str();
}

} // namespace flexsnoop
