#include "core/config_parser.hh"

#include <sstream>
#include <stdexcept>

namespace flexsnoop
{

namespace
{

/**
 * Strict unsigned parser with positional diagnostics. std::stoull alone
 * is too permissive for config input: it accepts leading whitespace and
 * a minus sign (wrapping the value), and silently stops at the first
 * non-digit. Every rejection names the key, the offending value, and
 * where in it the problem sits.
 */
std::uint64_t
parseUnsigned(const std::string &key, const std::string &value)
{
    if (value.empty()) {
        throw std::invalid_argument("empty value for " + key +
                                    " (expected an unsigned integer)");
    }
    for (std::size_t i = 0; i < value.size(); ++i) {
        if (value[i] < '0' || value[i] > '9') {
            std::ostringstream oss;
            oss << "bad unsigned value for " << key << ": '" << value
                << "' (unexpected character '" << value[i]
                << "' at position " << i << ")";
            throw std::invalid_argument(oss.str());
        }
    }
    try {
        return std::stoull(value);
    } catch (const std::out_of_range &) {
        throw std::invalid_argument("value for " + key +
                                    " is out of range: '" + value + "'");
    }
}

std::uint64_t
parseUnsignedAtLeast(const std::string &key, const std::string &value,
                     std::uint64_t minimum)
{
    const std::uint64_t parsed = parseUnsigned(key, value);
    if (parsed < minimum) {
        std::ostringstream oss;
        oss << key << " must be at least " << minimum << ", got "
            << parsed;
        throw std::invalid_argument(oss.str());
    }
    return parsed;
}

bool
parseBool(const std::string &key, const std::string &value)
{
    if (value == "1" || value == "true" || value == "on")
        return true;
    if (value == "0" || value == "false" || value == "off")
        return false;
    throw std::invalid_argument("bad boolean value for " + key + ": '" +
                                value +
                                "' (expected 0/1, true/false, on/off)");
}

std::string
knownKeysMessage()
{
    std::string msg = "known keys:";
    for (const auto &k : configKeys())
        msg += " " + k;
    return msg;
}

} // namespace

const std::vector<std::string> &
configKeys()
{
    static const std::vector<std::string> kKeys = {
        "num_cmps",         "cores_per_cmp",   "l2_entries",
        "l2_ways",          "num_rings",       "ring_link_latency",
        "ring_serialization", "mem_local_rt",  "mem_remote_rt",
        "mem_prefetch_rt",  "prefetch_enabled", "cmp_snoop_time",
        "retry_backoff",    "max_outstanding", "algorithm",
        "predictor",        "write_filtering", "watchdog_cycles",
        "max_retries",      "topology",        "local_rings",
        "global_hop_cycles", "global_algorithm",
    };
    return kKeys;
}

void
applyOverride(MachineConfig &config, const std::string &assignment)
{
    const auto eq = assignment.find('=');
    if (eq == std::string::npos) {
        throw std::invalid_argument("expected key=value, got '" +
                                    assignment + "' (no '=' found)");
    }
    if (eq == 0) {
        throw std::invalid_argument("expected key=value, got '" +
                                    assignment + "' (empty key)");
    }
    const std::string key = assignment.substr(0, eq);
    const std::string value = assignment.substr(eq + 1);

    if (key == "num_cmps") {
        config.setNumCmps(static_cast<std::size_t>(
            parseUnsignedAtLeast(key, value, 2)));
    } else if (key == "cores_per_cmp") {
        config.coresPerCmp = static_cast<std::size_t>(
            parseUnsignedAtLeast(key, value, 1));
    } else if (key == "l2_entries") {
        config.l2Entries = static_cast<std::size_t>(
            parseUnsignedAtLeast(key, value, 1));
    } else if (key == "l2_ways") {
        config.l2Ways = static_cast<std::size_t>(
            parseUnsignedAtLeast(key, value, 1));
    } else if (key == "num_rings") {
        config.numRings = static_cast<std::size_t>(
            parseUnsignedAtLeast(key, value, 1));
    } else if (key == "ring_link_latency") {
        config.ring.linkLatency = parseUnsigned(key, value);
    } else if (key == "ring_serialization") {
        config.ring.serialization = parseUnsigned(key, value);
    } else if (key == "mem_local_rt") {
        config.memory.localRoundTrip = parseUnsigned(key, value);
    } else if (key == "mem_remote_rt") {
        config.memory.remoteRoundTrip = parseUnsigned(key, value);
    } else if (key == "mem_prefetch_rt") {
        config.memory.remotePrefetchRoundTrip = parseUnsigned(key, value);
    } else if (key == "prefetch_enabled") {
        config.memory.prefetchEnabled = parseBool(key, value);
    } else if (key == "cmp_snoop_time") {
        config.coherence.cmpSnoopTime = parseUnsigned(key, value);
    } else if (key == "retry_backoff") {
        config.coherence.retryBackoff = parseUnsigned(key, value);
    } else if (key == "watchdog_cycles") {
        config.coherence.watchdogCycles = parseUnsigned(key, value);
    } else if (key == "max_retries") {
        config.coherence.maxRetries = static_cast<unsigned>(
            parseUnsignedAtLeast(key, value, 1));
    } else if (key == "max_outstanding") {
        config.core.maxOutstanding = static_cast<std::size_t>(
            parseUnsignedAtLeast(key, value, 1));
    } else if (key == "write_filtering") {
        config.writeFiltering = parseBool(key, value);
    } else if (key == "topology") {
        config.topology.kind = topologyKindFromName(value);
    } else if (key == "local_rings") {
        config.topology.localRings = static_cast<std::size_t>(
            parseUnsignedAtLeast(key, value, 1));
    } else if (key == "global_hop_cycles") {
        config.topology.globalHopCycles = static_cast<Cycle>(
            parseUnsignedAtLeast(key, value, 1));
    } else if (key == "global_algorithm") {
        algorithmFromName(value); // validate eagerly, with diagnostics
        config.topology.globalAlgorithm = value;
    } else if (key == "algorithm") {
        config.algorithm = algorithmFromName(value);
        config.predictor = defaultPredictorFor(config.algorithm);
    } else if (key == "predictor") {
        const PredictorConfig forced = PredictorConfig::fromName(value);
        if (forced.kind != config.predictor.kind) {
            throw std::invalid_argument(
                "predictor '" + value + "' does not match algorithm " +
                std::string(toString(config.algorithm)));
        }
        config.predictor = forced;
    } else {
        throw std::invalid_argument("unknown configuration key '" + key +
                                    "'; " + knownKeysMessage());
    }
}

void
applyOverrides(MachineConfig &config,
               const std::vector<std::string> &assignments)
{
    for (std::size_t i = 0; i < assignments.size(); ++i) {
        try {
            applyOverride(config, assignments[i]);
        } catch (const std::invalid_argument &e) {
            std::ostringstream oss;
            oss << "override #" << (i + 1) << " ('" << assignments[i]
                << "'): " << e.what();
            throw std::invalid_argument(oss.str());
        }
    }
}

std::string
describeConfig(const MachineConfig &config)
{
    std::ostringstream oss;
    oss << "algorithm=" << toString(config.algorithm)
        << " predictor=" << config.predictor.id
        << " num_cmps=" << config.numCmps
        << " cores_per_cmp=" << config.coresPerCmp
        << " l2_entries=" << config.l2Entries << " l2_ways="
        << config.l2Ways << " num_rings=" << config.numRings
        << " ring_link_latency=" << config.ring.linkLatency
        << " ring_serialization=" << config.ring.serialization
        << " cmp_snoop_time=" << config.coherence.cmpSnoopTime
        << " mem_local_rt=" << config.memory.localRoundTrip
        << " mem_remote_rt=" << config.memory.remoteRoundTrip
        << " mem_prefetch_rt=" << config.memory.remotePrefetchRoundTrip
        << " prefetch_enabled=" << config.memory.prefetchEnabled
        << " write_filtering=" << config.writeFiltering
        << " max_outstanding=" << config.core.maxOutstanding
        << " watchdog_cycles=" << config.coherence.watchdogCycles
        << " max_retries=" << config.coherence.maxRetries
        << " topology=" << toString(config.topology.kind);
    if (config.topology.hierarchical()) {
        oss << " local_rings=" << config.topology.localRings
            << " global_hop_cycles=" << config.topology.globalHopCycles;
        if (!config.topology.globalAlgorithm.empty())
            oss << " global_algorithm="
                << config.topology.globalAlgorithm;
    }
    return oss.str();
}

} // namespace flexsnoop
