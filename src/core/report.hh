/**
 * @file
 * Machine-readable result export: RunResult collections as CSV or JSON,
 * for plotting the reproduced figures outside the simulator.
 */

#ifndef FLEXSNOOP_CORE_REPORT_HH
#define FLEXSNOOP_CORE_REPORT_HH

#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "core/simulation.hh"

namespace flexsnoop
{

/**
 * Write @p results as CSV with a header row. Columns cover every
 * figure's metric: workload, algorithm, predictor, exec_cycles,
 * read_requests, snoops_per_request, link_msgs_per_request, energy_nj
 * (+ breakdown), predictor accuracy counts, fault/recovery counters,
 * and supporting detail. The free-text `error` column is sanitized
 * (commas and newlines become ';') so rows stay one line.
 */
void writeCsv(std::ostream &os, const std::vector<RunResult> &results);

/** Write only the CSV header row (incremental checkpoint files). */
void writeCsvHeader(std::ostream &os);

/** Append one result as a CSV row (no header). */
void writeCsvRow(std::ostream &os, const RunResult &r);

/**
 * Parse CSV previously produced by writeCsv()/writeCsvRow() back into
 * results (sweep resume). Columns are matched by header name, so a file
 * from an older build lacking newer columns still loads; unknown
 * columns or malformed cells throw std::runtime_error naming the
 * line/column.
 */
std::vector<RunResult> loadCsv(std::istream &is);

/** loadCsv() on @p path; returns {} when the file does not open (a
 *  resume with no previous checkpoint). */
std::vector<RunResult> loadCsvFile(const std::string &path);

/** Write @p results as a JSON array of objects (same fields as CSV). */
void writeJson(std::ostream &os, const std::vector<RunResult> &results);

/** Convenience wrappers over file streams. */
void saveCsv(const std::string &path,
             const std::vector<RunResult> &results);
void saveJson(const std::string &path,
              const std::vector<RunResult> &results);

} // namespace flexsnoop

#endif // FLEXSNOOP_CORE_REPORT_HH
