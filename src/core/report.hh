/**
 * @file
 * Machine-readable result export: RunResult collections as CSV or JSON,
 * for plotting the reproduced figures outside the simulator.
 */

#ifndef FLEXSNOOP_CORE_REPORT_HH
#define FLEXSNOOP_CORE_REPORT_HH

#include <ostream>
#include <string>
#include <vector>

#include "core/simulation.hh"

namespace flexsnoop
{

/**
 * Write @p results as CSV with a header row. Columns cover every
 * figure's metric: workload, algorithm, predictor, exec_cycles,
 * read_requests, snoops_per_request, link_msgs_per_request, energy_nj
 * (+ breakdown), predictor accuracy counts, and supporting detail.
 */
void writeCsv(std::ostream &os, const std::vector<RunResult> &results);

/** Write @p results as a JSON array of objects (same fields as CSV). */
void writeJson(std::ostream &os, const std::vector<RunResult> &results);

/** Convenience wrappers over file streams. */
void saveCsv(const std::string &path,
             const std::vector<RunResult> &results);
void saveJson(const std::string &path,
              const std::vector<RunResult> &results);

} // namespace flexsnoop

#endif // FLEXSNOOP_CORE_REPORT_HH
