#include "core/report.hh"

#include <cstdint>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>
#include <type_traits>

namespace flexsnoop
{

namespace
{

struct Field
{
    const char *name;
    std::function<void(std::ostream &, const RunResult &)> emit;
    std::function<void(RunResult &, const std::string &)> absorb;
    bool isString = false;
};

void
parseInto(std::string &out, const std::string &cell)
{
    out = cell;
}

void
parseInto(std::uint64_t &out, const std::string &cell)
{
    std::size_t used = 0;
    out = std::stoull(cell, &used);
    if (used != cell.size())
        throw std::invalid_argument("trailing characters");
}

void
parseInto(double &out, const std::string &cell)
{
    std::size_t used = 0;
    out = std::stod(cell, &used);
    if (used != cell.size())
        throw std::invalid_argument("trailing characters");
}

void
parseInto(bool &out, const std::string &cell)
{
    if (cell != "0" && cell != "1")
        throw std::invalid_argument("boolean cell must be 0 or 1");
    out = cell == "1";
}

template <typename T>
Field
field(const char *name, T RunResult::*member)
{
    Field f;
    f.name = name;
    f.emit = [member](std::ostream &os, const RunResult &r) {
        if constexpr (std::is_same_v<T, bool>)
            os << (r.*member ? 1 : 0);
        else
            os << r.*member;
    };
    f.absorb = [member](RunResult &r, const std::string &cell) {
        parseInto(r.*member, cell);
    };
    f.isString = std::is_same_v<T, std::string>;
    return f;
}

/** One-line free text: commas/newlines collapse to ';' so a row stays
 *  one parseable line whatever the exception message contained. */
std::string
sanitizeCell(const std::string &text)
{
    std::string out = text;
    for (char &c : out) {
        if (c == ',' || c == '\n' || c == '\r')
            c = ';';
    }
    return out;
}

Field
errorField()
{
    Field f;
    f.name = "error";
    f.emit = [](std::ostream &os, const RunResult &r) {
        os << sanitizeCell(r.error);
    };
    f.absorb = [](RunResult &r, const std::string &cell) {
        r.error = cell;
    };
    f.isString = true;
    return f;
}

const std::vector<Field> &
fields()
{
    static const std::vector<Field> kFields = {
        field("workload", &RunResult::workload),
        field("algorithm", &RunResult::algorithm),
        field("predictor", &RunResult::predictor),
        field("exec_cycles", &RunResult::execCycles),
        field("read_ring_requests", &RunResult::readRingRequests),
        field("read_snoops", &RunResult::readSnoops),
        field("snoops_per_request", &RunResult::snoopsPerReadRequest),
        field("read_link_messages", &RunResult::readLinkMessages),
        field("link_msgs_per_request",
              &RunResult::readLinkMessagesPerRequest),
        field("energy_nj", &RunResult::energyNj),
        field("ring_energy_nj", &RunResult::ringEnergyNj),
        field("snoop_energy_nj", &RunResult::snoopEnergyNj),
        field("predictor_energy_nj", &RunResult::predictorEnergyNj),
        field("downgrade_energy_nj", &RunResult::downgradeEnergyNj),
        field("true_positives", &RunResult::truePositives),
        field("true_negatives", &RunResult::trueNegatives),
        field("false_positives", &RunResult::falsePositives),
        field("false_negatives", &RunResult::falseNegatives),
        field("bridge_skips", &RunResult::bridgeSkips),
        field("bridge_descends", &RunResult::bridgeDescends),
        field("global_link_messages", &RunResult::globalLinkMessages),
        field("cache_supplies", &RunResult::cacheSupplies),
        field("memory_fetches", &RunResult::memoryFetches),
        field("downgrades", &RunResult::downgrades),
        field("collisions", &RunResult::collisions),
        field("retries", &RunResult::retries),
        field("writebacks", &RunResult::writebacks),
        field("avg_read_latency", &RunResult::avgReadLatency),
        field("fault_link_decisions", &RunResult::faultLinkDecisions),
        field("fault_drops", &RunResult::faultDrops),
        field("fault_dups", &RunResult::faultDups),
        field("fault_delays", &RunResult::faultDelays),
        field("fault_predictor_flips", &RunResult::faultPredictorFlips),
        field("watchdog_timeouts", &RunResult::watchdogTimeouts),
        field("stale_messages_absorbed",
              &RunResult::staleMessagesAbsorbed),
        field("predictor_flip_degrades",
              &RunResult::predictorFlipDegrades),
        field("incomplete_conclusions_rejected",
              &RunResult::incompleteConclusionsRejected),
        field("retry_storm_aborts", &RunResult::retryStormAborts),
        field("failed", &RunResult::failed),
        errorField(),
    };
    return kFields;
}

std::vector<std::string>
splitCsvLine(const std::string &line)
{
    std::vector<std::string> cells;
    std::string cell;
    std::istringstream is(line);
    while (std::getline(is, cell, ','))
        cells.push_back(cell);
    if (!line.empty() && line.back() == ',')
        cells.emplace_back();
    return cells;
}

} // namespace

void
writeCsvHeader(std::ostream &os)
{
    const auto &cols = fields();
    for (std::size_t i = 0; i < cols.size(); ++i)
        os << cols[i].name << (i + 1 < cols.size() ? "," : "\n");
    if (!os)
        throw std::runtime_error("failed writing CSV stream");
}

void
writeCsvRow(std::ostream &os, const RunResult &r)
{
    const auto &cols = fields();
    os << std::setprecision(10);
    for (std::size_t i = 0; i < cols.size(); ++i) {
        cols[i].emit(os, r);
        os << (i + 1 < cols.size() ? "," : "\n");
    }
    if (!os)
        throw std::runtime_error("failed writing CSV stream");
}

void
writeCsv(std::ostream &os, const std::vector<RunResult> &results)
{
    writeCsvHeader(os);
    for (const RunResult &r : results)
        writeCsvRow(os, r);
}

std::vector<RunResult>
loadCsv(std::istream &is)
{
    std::string line;
    if (!std::getline(is, line))
        return {}; // empty stream: no header, no rows

    // Map header names to fields so column order (and missing trailing
    // columns from an older writer) do not matter.
    const auto &cols = fields();
    std::vector<const Field *> layout;
    for (const std::string &name : splitCsvLine(line)) {
        const Field *match = nullptr;
        for (const Field &f : cols) {
            if (name == f.name) {
                match = &f;
                break;
            }
        }
        if (!match) {
            throw std::runtime_error("CSV header has unknown column '" +
                                     name + "'");
        }
        layout.push_back(match);
    }

    std::vector<RunResult> results;
    std::size_t line_no = 1;
    while (std::getline(is, line)) {
        ++line_no;
        if (line.empty())
            continue;
        const auto cells = splitCsvLine(line);
        if (cells.size() != layout.size()) {
            std::ostringstream oss;
            oss << "CSV line " << line_no << " has " << cells.size()
                << " cells, header has " << layout.size();
            throw std::runtime_error(oss.str());
        }
        RunResult r;
        for (std::size_t i = 0; i < cells.size(); ++i) {
            try {
                layout[i]->absorb(r, cells[i]);
            } catch (const std::exception &e) {
                std::ostringstream oss;
                oss << "CSV line " << line_no << ", column '"
                    << layout[i]->name << "': cannot parse '" << cells[i]
                    << "' (" << e.what() << ")";
                throw std::runtime_error(oss.str());
            }
        }
        results.push_back(std::move(r));
    }
    return results;
}

std::vector<RunResult>
loadCsvFile(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        return {};
    return loadCsv(is);
}

void
writeJson(std::ostream &os, const std::vector<RunResult> &results)
{
    const auto &cols = fields();
    os << std::setprecision(10) << "[\n";
    for (std::size_t r = 0; r < results.size(); ++r) {
        os << "  {";
        for (std::size_t i = 0; i < cols.size(); ++i) {
            os << '"' << cols[i].name << "\": ";
            if (cols[i].isString) {
                os << '"';
                cols[i].emit(os, results[r]);
                os << '"';
            } else {
                cols[i].emit(os, results[r]);
            }
            if (i + 1 < cols.size())
                os << ", ";
        }
        os << '}' << (r + 1 < results.size() ? "," : "") << '\n';
    }
    os << "]\n";
    if (!os)
        throw std::runtime_error("failed writing JSON stream");
}

void
saveCsv(const std::string &path, const std::vector<RunResult> &results)
{
    std::ofstream os(path);
    if (!os)
        throw std::runtime_error("cannot open for writing: " + path);
    writeCsv(os, results);
}

void
saveJson(const std::string &path, const std::vector<RunResult> &results)
{
    std::ofstream os(path);
    if (!os)
        throw std::runtime_error("cannot open for writing: " + path);
    writeJson(os, results);
}

} // namespace flexsnoop
