#include "core/report.hh"

#include <fstream>
#include <iomanip>
#include <stdexcept>

namespace flexsnoop
{

namespace
{

struct Field
{
    const char *name;
    std::function<void(std::ostream &, const RunResult &)> emit;
    bool isString = false;
};

const std::vector<Field> &
fields()
{
    static const std::vector<Field> kFields = {
        {"workload",
         [](std::ostream &os, const RunResult &r) { os << r.workload; },
         true},
        {"algorithm",
         [](std::ostream &os, const RunResult &r) { os << r.algorithm; },
         true},
        {"predictor",
         [](std::ostream &os, const RunResult &r) { os << r.predictor; },
         true},
        {"exec_cycles",
         [](std::ostream &os, const RunResult &r) { os << r.execCycles; }},
        {"read_ring_requests",
         [](std::ostream &os, const RunResult &r) {
             os << r.readRingRequests;
         }},
        {"read_snoops",
         [](std::ostream &os, const RunResult &r) { os << r.readSnoops; }},
        {"snoops_per_request",
         [](std::ostream &os, const RunResult &r) {
             os << r.snoopsPerReadRequest;
         }},
        {"read_link_messages",
         [](std::ostream &os, const RunResult &r) {
             os << r.readLinkMessages;
         }},
        {"link_msgs_per_request",
         [](std::ostream &os, const RunResult &r) {
             os << r.readLinkMessagesPerRequest;
         }},
        {"energy_nj",
         [](std::ostream &os, const RunResult &r) { os << r.energyNj; }},
        {"ring_energy_nj",
         [](std::ostream &os, const RunResult &r) {
             os << r.ringEnergyNj;
         }},
        {"snoop_energy_nj",
         [](std::ostream &os, const RunResult &r) {
             os << r.snoopEnergyNj;
         }},
        {"predictor_energy_nj",
         [](std::ostream &os, const RunResult &r) {
             os << r.predictorEnergyNj;
         }},
        {"downgrade_energy_nj",
         [](std::ostream &os, const RunResult &r) {
             os << r.downgradeEnergyNj;
         }},
        {"true_positives",
         [](std::ostream &os, const RunResult &r) {
             os << r.truePositives;
         }},
        {"true_negatives",
         [](std::ostream &os, const RunResult &r) {
             os << r.trueNegatives;
         }},
        {"false_positives",
         [](std::ostream &os, const RunResult &r) {
             os << r.falsePositives;
         }},
        {"false_negatives",
         [](std::ostream &os, const RunResult &r) {
             os << r.falseNegatives;
         }},
        {"cache_supplies",
         [](std::ostream &os, const RunResult &r) {
             os << r.cacheSupplies;
         }},
        {"memory_fetches",
         [](std::ostream &os, const RunResult &r) {
             os << r.memoryFetches;
         }},
        {"downgrades",
         [](std::ostream &os, const RunResult &r) { os << r.downgrades; }},
        {"collisions",
         [](std::ostream &os, const RunResult &r) { os << r.collisions; }},
        {"retries",
         [](std::ostream &os, const RunResult &r) { os << r.retries; }},
        {"writebacks",
         [](std::ostream &os, const RunResult &r) { os << r.writebacks; }},
        {"avg_read_latency",
         [](std::ostream &os, const RunResult &r) {
             os << r.avgReadLatency;
         }},
    };
    return kFields;
}

} // namespace

void
writeCsv(std::ostream &os, const std::vector<RunResult> &results)
{
    const auto &cols = fields();
    for (std::size_t i = 0; i < cols.size(); ++i)
        os << cols[i].name << (i + 1 < cols.size() ? "," : "\n");
    os << std::setprecision(10);
    for (const RunResult &r : results) {
        for (std::size_t i = 0; i < cols.size(); ++i) {
            cols[i].emit(os, r);
            os << (i + 1 < cols.size() ? "," : "\n");
        }
    }
    if (!os)
        throw std::runtime_error("failed writing CSV stream");
}

void
writeJson(std::ostream &os, const std::vector<RunResult> &results)
{
    const auto &cols = fields();
    os << std::setprecision(10) << "[\n";
    for (std::size_t r = 0; r < results.size(); ++r) {
        os << "  {";
        for (std::size_t i = 0; i < cols.size(); ++i) {
            os << '"' << cols[i].name << "\": ";
            if (cols[i].isString) {
                os << '"';
                cols[i].emit(os, results[r]);
                os << '"';
            } else {
                cols[i].emit(os, results[r]);
            }
            if (i + 1 < cols.size())
                os << ", ";
        }
        os << '}' << (r + 1 < results.size() ? "," : "") << '\n';
    }
    os << "]\n";
    if (!os)
        throw std::runtime_error("failed writing JSON stream");
}

void
saveCsv(const std::string &path, const std::vector<RunResult> &results)
{
    std::ofstream os(path);
    if (!os)
        throw std::runtime_error("cannot open for writing: " + path);
    writeCsv(os, results);
}

void
saveJson(const std::string &path, const std::vector<RunResult> &results)
{
    std::ofstream os(path);
    if (!os)
        throw std::runtime_error("cannot open for writing: " + path);
    writeJson(os, results);
}

} // namespace flexsnoop
