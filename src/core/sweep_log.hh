/**
 * @file
 * Structured sweep progress log (docs/TELEMETRY.md): one JSON object
 * per line, so a long hardened sweep can be watched with `tail -f`,
 * parsed by dashboards, and post-mortemed after a crash — the last
 * line always names the cell that was running. Events:
 *
 *   {"event":"sweep_start","ts":...,"total":N}
 *   {"event":"cell_start","ts":...,"cell":i,"workload":...,
 *    "algorithm":...,"predictor":...}
 *   {"event":"cell_finish","ts":...,"cell":i,...,"status":"ok",
 *    "wall_sec":...,"completed":k,"total":N,"eta_sec":...,
 *    "peak_rss_kb":...}
 *   {"event":"sweep_finish","ts":...,"completed":N,"failed":F,
 *    "wall_sec":...,"peak_rss_kb":...}
 *
 * cell_finish status is "ok", "resumed" (served from a checkpoint),
 * "failed", or "timeout". eta_sec extrapolates the remaining cells
 * from the mean wall time of the completed ones; peak_rss_kb is the
 * process high-water mark (getrusage). All writes are mutex-serialized
 * and flushed per line, matching the checkpoint CSV's guarantees.
 */

#ifndef FLEXSNOOP_CORE_SWEEP_LOG_HH
#define FLEXSNOOP_CORE_SWEEP_LOG_HH

#include <chrono>
#include <cstddef>
#include <fstream>
#include <mutex>
#include <string>

namespace flexsnoop
{

class SweepLog
{
  public:
    /** Cell outcome recorded by cellFinish(). */
    enum class Status
    {
        Ok,
        Resumed,
        Failed,
        Timeout,
    };

    /**
     * Open @p path (truncating) and emit sweep_start for @p total
     * cells. @throws std::runtime_error when the file cannot be
     * created, before any cell runs — like the trace and metrics
     * sinks, a mis-typed path must not cost a sweep.
     */
    SweepLog(const std::string &path, std::size_t total);
    ~SweepLog(); ///< emits sweep_finish if the owner did not

    SweepLog(const SweepLog &) = delete;
    SweepLog &operator=(const SweepLog &) = delete;

    void cellStart(std::size_t cell, const std::string &workload,
                   const std::string &algorithm,
                   const std::string &predictor);

    void cellFinish(std::size_t cell, const std::string &workload,
                    const std::string &algorithm,
                    const std::string &predictor, Status status,
                    double wall_sec);

    /** Emit the sweep_finish summary line. Idempotent. */
    void finish();

  private:
    double elapsedSec() const;

    std::ofstream _file;
    std::mutex _mutex;
    std::size_t _total;
    std::size_t _completed = 0; ///< cells finished, any status
    std::size_t _failed = 0;    ///< of which failed or timed out
    std::chrono::steady_clock::time_point _start;
    bool _finished = false;
};

} // namespace flexsnoop

#endif // FLEXSNOOP_CORE_SWEEP_LOG_HH
