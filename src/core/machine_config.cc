#include "core/machine_config.hh"

#include <cassert>

namespace flexsnoop
{

void
MachineConfig::setNumCmps(std::size_t n)
{
    assert(n >= 2);
    numCmps = n;
    // Pick the most square rows x columns factorization.
    std::size_t rows = 1;
    for (std::size_t r = 1; r * r <= n; ++r) {
        if (n % r == 0)
            rows = r;
    }
    torus.rows = rows;
    torus.columns = n / rows;
}

MachineConfig
MachineConfig::paperDefault(Algorithm a, std::size_t cores_per_cmp)
{
    MachineConfig cfg;
    cfg.coresPerCmp = cores_per_cmp;
    cfg.algorithm = a;
    cfg.predictor = defaultPredictorFor(a);
    cfg.torus.columns = 4;
    cfg.torus.rows = 2;
    return cfg;
}

MachineConfig
MachineConfig::testDefault(Algorithm a)
{
    MachineConfig cfg;
    cfg.numCmps = 4;
    cfg.coresPerCmp = 1;
    cfg.l2Entries = 256;
    cfg.l2Ways = 4;
    cfg.numRings = 1;
    cfg.torus.columns = 2;
    cfg.torus.rows = 2;
    cfg.algorithm = a;
    cfg.predictor = defaultPredictorFor(a);
    return cfg;
}

} // namespace flexsnoop
