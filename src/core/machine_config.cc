#include "core/machine_config.hh"

#include <algorithm>
#include <cassert>

#include "sim/timing_wheel.hh"

namespace flexsnoop
{

std::size_t
MachineConfig::eventQueueNearBuckets() const
{
    Cycle hot = std::max<Cycle>(
        {ring.linkLatency + ring.serialization,
         coherence.cmpSnoopTime + coherence.l2RoundTrip +
             predictor.latency,
         coherence.localBusRoundTrip, coherence.waiterBusDelay,
         memory.localRoundTrip, memory.remoteRoundTrip,
         memory.remotePrefetchRoundTrip, memory.dramAccess,
         torus.perHopLatency * (torus.columns / 2 + torus.rows / 2) +
             torus.lineSerialization});
    // Hier topology: a cross-block hop chains the local wrap and one
    // global-ring hop into a single arrival event.
    if (topology.hierarchical())
        hot = std::max<Cycle>(hot, ring.linkLatency +
                                       topology.globalHopCycles +
                                       ring.serialization);
    // Cover the largest single hot-path latency and no more: the near
    // array's cache footprint costs more than the occasional overflow
    // detour, so oversizing the wheel is a net loss (see DESIGN.md).
    // TimingWheel::configure rounds up to a power of two — which adds
    // its own headroom — and clamps to the supported range.
    return static_cast<std::size_t>(
        std::min<Cycle>(hot, TimingWheel::kMaxNearBuckets));
}

void
MachineConfig::setNumCmps(std::size_t n)
{
    assert(n >= 2);
    numCmps = n;
    // Pick the most square rows x columns factorization.
    std::size_t rows = 1;
    for (std::size_t r = 1; r * r <= n; ++r) {
        if (n % r == 0)
            rows = r;
    }
    torus.rows = rows;
    torus.columns = n / rows;
}

MachineConfig
MachineConfig::paperDefault(Algorithm a, std::size_t cores_per_cmp)
{
    MachineConfig cfg;
    cfg.coresPerCmp = cores_per_cmp;
    cfg.algorithm = a;
    cfg.predictor = defaultPredictorFor(a);
    cfg.torus.columns = 4;
    cfg.torus.rows = 2;
    return cfg;
}

MachineConfig
MachineConfig::testDefault(Algorithm a)
{
    MachineConfig cfg;
    cfg.numCmps = 4;
    cfg.coresPerCmp = 1;
    cfg.l2Entries = 256;
    cfg.l2Ways = 4;
    cfg.numRings = 1;
    cfg.torus.columns = 2;
    cfg.torus.rows = 2;
    cfg.algorithm = a;
    cfg.predictor = defaultPredictorFor(a);
    return cfg;
}

} // namespace flexsnoop
