#include "core/simulation.hh"

#include <cassert>
#include <chrono>
#include <functional>
#include <iomanip>
#include <memory>
#include <sstream>
#include <stdexcept>

#include "sim/fault_injector.hh"
#include "sim/log.hh"

namespace flexsnoop
{

namespace
{

/** Full liveness post-mortem: every unfinished core, its in-flight
 *  lines, and the controller's transaction/gateway state. */
std::string
describeStuckState(Machine &machine, WorkloadRunner &runner)
{
    std::ostringstream os;
    os << "stuck at cycle " << machine.queue().now() << "\n";
    for (std::size_t c = 0; c < runner.numCores(); ++c) {
        TraceCore &core = runner.core(c);
        if (core.done())
            continue;
        os << "core " << core.id() << ": issued " << core.refsIssued()
           << ", outstanding " << core.outstanding()
           << (core.atBarrier() ? ", at warmup barrier" : "") << "\n";
        for (const auto &[line, count] : core.inFlight()) {
            os << "  awaiting line 0x" << std::hex << line << std::dec
               << " x" << count << "\n";
        }
    }
    machine.controller().dumpOutstanding(os);
    // The telemetry lead-up: how the machine got here, not just the
    // frozen state (satellite of docs/TELEMETRY.md).
    if (const MetricsSampler *metrics = machine.metricsSampler())
        metrics->dumpRecent(os, 8);
    return os.str();
}

/** Sum of references issued and completed over all cores: strictly
 *  increases while the workload moves, frozen in deadlock *and* in
 *  livelock (endless squash/retry completes nothing). */
std::uint64_t
progressMetric(WorkloadRunner &runner)
{
    std::uint64_t progress = 0;
    for (std::size_t c = 0; c < runner.numCores(); ++c) {
        TraceCore &core = runner.core(c);
        progress += core.refsIssued() +
                    core.stats().counterValue("completions");
    }
    return progress;
}

} // namespace

void
RunResult::dump(std::ostream &os) const
{
    os << workload << " / " << algorithm << " (" << predictor << ")\n"
       << "  exec cycles          " << execCycles << '\n'
       << "  read ring requests   " << readRingRequests << '\n'
       << "  snoops/request       " << std::fixed << std::setprecision(2)
       << snoopsPerReadRequest << '\n'
       << "  link msgs/request    " << readLinkMessagesPerRequest << '\n'
       << "  energy (uJ)          " << energyNj / 1e3 << '\n'
       << "  cache supplies       " << cacheSupplies << '\n'
       << "  memory fetches       " << memoryFetches << '\n'
       << "  avg read latency     " << avgReadLatency << '\n';
    if (bridgeSkips + bridgeDescends + globalLinkMessages > 0) {
        os << "  bridge skip/descend  " << bridgeSkips << " / "
           << bridgeDescends << '\n'
           << "  global link msgs     " << globalLinkMessages << '\n';
    }
    if (predictions() > 0) {
        const double n = static_cast<double>(predictions());
        os << "  predictor TP/TN/FP/FN  " << truePositives / n << " / "
           << trueNegatives / n << " / " << falsePositives / n << " / "
           << falseNegatives / n << '\n';
    }
    if (faultLinkDecisions > 0) {
        os << "  faults drop/dup/delay  " << faultDrops << " / "
           << faultDups << " / " << faultDelays << " (of "
           << faultLinkDecisions << " link sends)\n"
           << "  predictor flips        " << faultPredictorFlips
           << " (degrades " << predictorFlipDegrades << ")\n"
           << "  watchdog timeouts      " << watchdogTimeouts << '\n'
           << "  stale msgs absorbed    " << staleMessagesAbsorbed << '\n'
           << "  incomplete rejected    "
           << incompleteConclusionsRejected << '\n';
    }
    if (failed)
        os << "  FAILED: " << error << '\n';
    os.unsetf(std::ios::fixed);
}

RunResult
runSimulation(const MachineConfig &config, const CoreTraces &traces,
              const std::string &workload_name)
{
    assert(traces.numCores() == config.numCores() &&
           "trace core count must match the machine");

    Machine machine(config);
    WorkloadRunner runner(machine.queue(), machine.controller(), traces,
                          config.core);
    runner.setWarmupDoneFn([&machine]() {
        machine.resetStats();
        if (TraceSink *trace = machine.traceSink())
            trace->record(TraceEvent::MeasureStart, machine.queue().now(),
                          0, 0);
        if (MetricsSampler *metrics = machine.metricsSampler())
            metrics->markMeasureStart(machine.queue().now());
    });

    // Liveness guards (docs/FAULTS.md): armed whenever faults are on or
    // a guard is configured explicitly; never scheduled otherwise, so a
    // plain run's event stream is untouched. The self-rescheduling
    // check event can extend the drain tail by up to one interval.
    const bool guardsOn = config.faults.armed() ||
                          config.guards.progressCheckCycles > 0 ||
                          config.guards.wallClockLimitSec > 0;
    if (guardsOn) {
        const Cycle step = config.guards.progressCheckCycles > 0
                               ? config.guards.progressCheckCycles
                               : Cycle{1'000'000};
        const double wall_limit = config.guards.wallClockLimitSec;
        const auto wall_start = std::chrono::steady_clock::now();
        auto last = std::make_shared<std::uint64_t>(progressMetric(runner));
        auto tick = std::make_shared<std::function<void()>>();
        *tick = [&machine, &runner, step, wall_limit, wall_start, last,
                 tick]() {
            if (runner.allDone() &&
                machine.controller().outstanding() == 0)
                return; // finished; stop rescheduling so the queue drains
            if (wall_limit > 0) {
                const double sec =
                    std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - wall_start)
                        .count();
                if (sec > wall_limit) {
                    std::ostringstream oss;
                    oss << "simulation exceeded wall-clock limit ("
                        << wall_limit << " s)";
                    throw SimulationStuckError(
                        oss.str(), describeStuckState(machine, runner),
                        SimulationStuckError::Kind::Timeout);
                }
            }
            const std::uint64_t now_progress = progressMetric(runner);
            if (now_progress == *last) {
                std::ostringstream oss;
                oss << "no forward progress for " << step
                    << " cycles (deadlock or livelock)";
                throw SimulationStuckError(
                    oss.str(), describeStuckState(machine, runner));
            }
            *last = now_progress;
            machine.queue().schedule(step, [tick]() { (*tick)(); });
        };
        machine.queue().schedule(step, [tick]() { (*tick)(); });
    }

    const Cycle measured = runner.run();

    // The queue drained; nothing can ever move again. Any unfinished
    // core or live transaction is a hard deadlock (e.g. a dropped
    // message with the watchdog disabled).
    if (!runner.allDone() || machine.controller().outstanding() != 0) {
        throw SimulationStuckError(
            "event queue drained with unfinished work: protocol deadlock",
            describeStuckState(machine, runner));
    }

    machine.finalizeEnergy();

    // The protocol must leave the caches in a coherent state. This is a
    // hard error in every build type: a run that violated coherence
    // invariants has meaningless statistics, so it must never feed a
    // figure silently.
    const auto violations = machine.checker().check();
    if (!violations.empty()) {
        for (const auto &v : violations) {
            FS_LOG(Error, machine.queue().now(), "checker",
                   "line 0x" << std::hex << v.line << std::dec << ": "
                             << v.description);
        }
        std::ostringstream oss;
        oss << "coherence invariants violated (" << violations.size()
            << " violation(s); first: line 0x" << std::hex
            << violations.front().line << std::dec << ' '
            << violations.front().description << ')';
        throw std::runtime_error(oss.str());
    }

    const auto &cstats = machine.controller().stats();
    const auto &energy = machine.energy();

    RunResult r;
    r.workload = workload_name;
    r.algorithm = std::string(toString(config.algorithm));
    r.predictor = config.predictor.id;
    r.execCycles = measured;

    r.readRingRequests = cstats.counterValue("read_ring_requests");
    r.readSnoops = cstats.counterValue("read_snoops");
    r.snoopsPerReadRequest =
        r.readRingRequests
            ? static_cast<double>(r.readSnoops) / r.readRingRequests
            : 0.0;

    r.readLinkMessages = cstats.counterValue("read_link_messages");
    r.readLinkMessagesPerRequest =
        r.readRingRequests
            ? static_cast<double>(r.readLinkMessages) / r.readRingRequests
            : 0.0;

    r.energyNj = energy.totalNj();
    r.ringEnergyNj = energy.categoryNj(EnergyEvent::RingLinkMessage);
    r.snoopEnergyNj = energy.categoryNj(EnergyEvent::CmpSnoop);
    r.predictorEnergyNj = energy.categoryNj(EnergyEvent::PredictorAccess) +
                          energy.categoryNj(EnergyEvent::PredictorTrain);
    r.downgradeEnergyNj =
        energy.categoryNj(EnergyEvent::DowngradeCacheOp) +
        energy.categoryNj(EnergyEvent::DowngradeWriteback) +
        energy.categoryNj(EnergyEvent::DowngradeReRead);

    r.writeRingRequests = cstats.counterValue("write_ring_requests");
    r.writeSnoops = cstats.counterValue("write_snoops");
    r.writeFiltered = cstats.counterValue("write_filtered");

    r.truePositives = machine.predictorTruePositives();
    r.trueNegatives = machine.predictorTrueNegatives();
    r.falsePositives = machine.predictorFalsePositives();
    r.falseNegatives = machine.predictorFalseNegatives();

    r.bridgeSkips = machine.controller().bridgeSkips();
    r.bridgeDescends = machine.controller().bridgeDescends();
    r.globalLinkMessages = machine.globalLinkTraversals();

    r.cacheSupplies = cstats.counterValue("read_cache_supplies");
    r.memoryFetches = cstats.counterValue("memory_fetches");
    r.downgrades = machine.downgrades();
    r.collisions = cstats.counterValue("collisions");
    r.retries = cstats.counterValue("retries");
    r.writebacks = machine.memory().writebacks();
    r.avgReadLatency = cstats.scalarMean("read_latency");
    {
        auto &hist = machine.controller().stats().histogram(
            "read_latency_hist", 50.0, 80);
        r.p50ReadLatency = hist.percentile(0.5);
        r.p95ReadLatency = hist.percentile(0.95);
    }

    r.watchdogTimeouts = cstats.counterValue("watchdog_timeouts");
    r.staleMessagesAbsorbed =
        cstats.counterValue("stale_messages_absorbed");
    r.predictorFlipDegrades =
        cstats.counterValue("predictor_flip_degrades");
    r.incompleteConclusionsRejected =
        cstats.counterValue("incomplete_conclusions_rejected");
    r.retryStormAborts = cstats.counterValue("retry_storm_aborts");
    if (const FaultInjector *faults = machine.faultInjector()) {
        r.faultLinkDecisions = faults->linkDecisions();
        r.faultDrops = faults->dropsInjected();
        r.faultDups = faults->dupsInjected();
        r.faultDelays = faults->delaysInjected();
        r.faultPredictorFlips = faults->predictorFlips();
    }
    return r;
}

} // namespace flexsnoop
