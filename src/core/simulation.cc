#include "core/simulation.hh"

#include <cassert>
#include <iomanip>
#include <sstream>
#include <stdexcept>

#include "sim/log.hh"

namespace flexsnoop
{

void
RunResult::dump(std::ostream &os) const
{
    os << workload << " / " << algorithm << " (" << predictor << ")\n"
       << "  exec cycles          " << execCycles << '\n'
       << "  read ring requests   " << readRingRequests << '\n'
       << "  snoops/request       " << std::fixed << std::setprecision(2)
       << snoopsPerReadRequest << '\n'
       << "  link msgs/request    " << readLinkMessagesPerRequest << '\n'
       << "  energy (uJ)          " << energyNj / 1e3 << '\n'
       << "  cache supplies       " << cacheSupplies << '\n'
       << "  memory fetches       " << memoryFetches << '\n'
       << "  avg read latency     " << avgReadLatency << '\n';
    if (predictions() > 0) {
        const double n = static_cast<double>(predictions());
        os << "  predictor TP/TN/FP/FN  " << truePositives / n << " / "
           << trueNegatives / n << " / " << falsePositives / n << " / "
           << falseNegatives / n << '\n';
    }
    os.unsetf(std::ios::fixed);
}

RunResult
runSimulation(const MachineConfig &config, const CoreTraces &traces,
              const std::string &workload_name)
{
    assert(traces.numCores() == config.numCores() &&
           "trace core count must match the machine");

    Machine machine(config);
    WorkloadRunner runner(machine.queue(), machine.controller(), traces,
                          config.core);
    runner.setWarmupDoneFn([&machine]() { machine.resetStats(); });

    const Cycle measured = runner.run();
    machine.finalizeEnergy();

    // The protocol must leave the caches in a coherent state. This is a
    // hard error in every build type: a run that violated coherence
    // invariants has meaningless statistics, so it must never feed a
    // figure silently.
    const auto violations = machine.checker().check();
    if (!violations.empty()) {
        for (const auto &v : violations) {
            FS_LOG(Error, machine.queue().now(), "checker",
                   "line 0x" << std::hex << v.line << std::dec << ": "
                             << v.description);
        }
        std::ostringstream oss;
        oss << "coherence invariants violated (" << violations.size()
            << " violation(s); first: line 0x" << std::hex
            << violations.front().line << std::dec << ' '
            << violations.front().description << ')';
        throw std::runtime_error(oss.str());
    }

    const auto &cstats = machine.controller().stats();
    const auto &energy = machine.energy();

    RunResult r;
    r.workload = workload_name;
    r.algorithm = std::string(toString(config.algorithm));
    r.predictor = config.predictor.id;
    r.execCycles = measured;

    r.readRingRequests = cstats.counterValue("read_ring_requests");
    r.readSnoops = cstats.counterValue("read_snoops");
    r.snoopsPerReadRequest =
        r.readRingRequests
            ? static_cast<double>(r.readSnoops) / r.readRingRequests
            : 0.0;

    r.readLinkMessages = cstats.counterValue("read_link_messages");
    r.readLinkMessagesPerRequest =
        r.readRingRequests
            ? static_cast<double>(r.readLinkMessages) / r.readRingRequests
            : 0.0;

    r.energyNj = energy.totalNj();
    r.ringEnergyNj = energy.categoryNj(EnergyEvent::RingLinkMessage);
    r.snoopEnergyNj = energy.categoryNj(EnergyEvent::CmpSnoop);
    r.predictorEnergyNj = energy.categoryNj(EnergyEvent::PredictorAccess) +
                          energy.categoryNj(EnergyEvent::PredictorTrain);
    r.downgradeEnergyNj =
        energy.categoryNj(EnergyEvent::DowngradeCacheOp) +
        energy.categoryNj(EnergyEvent::DowngradeWriteback) +
        energy.categoryNj(EnergyEvent::DowngradeReRead);

    r.writeRingRequests = cstats.counterValue("write_ring_requests");
    r.writeSnoops = cstats.counterValue("write_snoops");
    r.writeFiltered = cstats.counterValue("write_filtered");

    r.truePositives = machine.predictorTruePositives();
    r.trueNegatives = machine.predictorTrueNegatives();
    r.falsePositives = machine.predictorFalsePositives();
    r.falseNegatives = machine.predictorFalseNegatives();

    r.cacheSupplies = cstats.counterValue("read_cache_supplies");
    r.memoryFetches = cstats.counterValue("memory_fetches");
    r.downgrades = machine.downgrades();
    r.collisions = cstats.counterValue("collisions");
    r.retries = cstats.counterValue("retries");
    r.writebacks = machine.memory().writebacks();
    r.avgReadLatency = cstats.scalarMean("read_latency");
    {
        auto &hist = machine.controller().stats().histogram(
            "read_latency_hist", 50.0, 80);
        r.p50ReadLatency = hist.percentile(0.5);
        r.p95ReadLatency = hist.percentile(0.95);
    }
    return r;
}

} // namespace flexsnoop
