/**
 * @file
 * The assembled machine: event queue, ring network, data network,
 * memory, CMP nodes with predictors, the snooping policy, and the
 * coherence controller, wired per a MachineConfig.
 *
 * This is the main entry point of the library together with
 * Simulation (simulation.hh), which drives workloads through it.
 */

#ifndef FLEXSNOOP_CORE_MACHINE_HH
#define FLEXSNOOP_CORE_MACHINE_HH

#include <memory>
#include <vector>

#include "coherence/checker.hh"
#include "coherence/controller.hh"
#include "core/machine_config.hh"

namespace flexsnoop
{

class Machine
{
  public:
    explicit Machine(const MachineConfig &config);

    const MachineConfig &config() const { return _config; }

    EventQueue &queue() { return _queue; }
    RingNetwork &ring() { return *_ring; }
    DataNetwork &dataNetwork() { return *_data; }
    MemoryController &memory() { return *_memory; }
    EnergyModel &energy() { return _energy; }
    SnoopPolicy &policy() { return *_policy; }
    CoherenceController &controller() { return *_controller; }
    CmpNode &node(NodeId n) { return *_nodes[n]; }
    std::size_t numNodes() const { return _nodes.size(); }
    const CoherenceChecker &checker() const { return *_checker; }

    /** Fault injector, or nullptr when config().faults is disarmed. */
    FaultInjector *faultInjector() { return _faults.get(); }
    const FaultInjector *faultInjector() const { return _faults.get(); }

    /** Trace sink, or nullptr when config().trace is disabled. */
    TraceSink *traceSink() { return _trace.get(); }
    const TraceSink *traceSink() const { return _trace.get(); }

    /** Metrics sampler, or nullptr when config().metrics is disabled. */
    MetricsSampler *metricsSampler() { return _metrics.get(); }
    const MetricsSampler *metricsSampler() const { return _metrics.get(); }

    /** Hierarchy geometry, or nullptr when the topology is flat (a
     *  degenerate hier config -- one local ring -- is also flat). */
    const Topology *topology() const { return _topology.get(); }

    /** Messages that traversed a global-ring link (zero when flat). */
    std::uint64_t globalLinkTraversals() const
    {
        return _ring->globalLinkTraversals();
    }

    /** Bridge aggregate predictors of @p block; null when that level
     *  cannot skip (reads) / write filtering is off (presence). */
    PresencePredictor *bridgeSupplierAggregate(std::size_t block)
    {
        return block < _bridgeSupplier.size()
                   ? _bridgeSupplier[block].get()
                   : nullptr;
    }
    PresencePredictor *bridgePresenceAggregate(std::size_t block)
    {
        return block < _bridgePresence.size()
                   ? _bridgePresence[block].get()
                   : nullptr;
    }

    /**
     * Reset all statistics and the energy account (used at the warmup
     * barrier so only the measured phase is reported).
     */
    void resetStats();

    /**
     * Fold end-of-run event counts that are accounted from statistics
     * (predictor lookups/training, downgrade cache ops) into the energy
     * model. Call once, after the run.
     */
    void finalizeEnergy();

    // Aggregated predictor accuracy over all nodes -----------------------
    std::uint64_t predictorTruePositives() const;
    std::uint64_t predictorTrueNegatives() const;
    std::uint64_t predictorFalsePositives() const;
    std::uint64_t predictorFalseNegatives() const;

    /** Total forced downgrades (Exact algorithm) over all nodes. */
    std::uint64_t downgrades() const;

  private:
    std::uint64_t sumPredictorCounter(const std::string &name) const;

    /** CounterSnapshot hook: sample the controller's headline counters
     *  into the trace (piggybacked on record(), never on the queue). */
    void snapshotCounters(Cycle cycle);

    /** Register the standard series set on _metrics (docs/TELEMETRY.md)
     *  and arm the queue's sampling hook. */
    void registerMetricSeries();

    MachineConfig _config;
    EventQueue _queue;
    EnergyModel _energy;
    std::unique_ptr<SnoopPolicy> _policy;
    std::unique_ptr<RingNetwork> _ring;
    std::unique_ptr<DataNetwork> _data;
    std::unique_ptr<MemoryController> _memory;
    std::vector<std::unique_ptr<CmpNode>> _nodes;
    std::unique_ptr<CoherenceController> _controller;
    std::unique_ptr<CoherenceChecker> _checker;
    std::unique_ptr<FaultInjector> _faults; ///< null when disarmed
    std::unique_ptr<TraceSink> _trace;      ///< null when tracing is off
    std::unique_ptr<MetricsSampler> _metrics; ///< null when sampling is off

    // Hierarchical topology (docs/TOPOLOGY.md); all empty when flat.
    std::unique_ptr<Topology> _topology;
    /** Per-level action table when topology.globalAlgorithm differs
     *  from the node algorithm; null = bridges use _policy. */
    std::unique_ptr<SnoopPolicy> _globalPolicy;
    /** Per-block bridge aggregates (entries may be null). */
    std::vector<std::unique_ptr<PresencePredictor>> _bridgeSupplier;
    std::vector<std::unique_ptr<PresencePredictor>> _bridgePresence;
};

} // namespace flexsnoop

#endif // FLEXSNOOP_CORE_MACHINE_HH
