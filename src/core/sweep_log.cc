#include "core/sweep_log.hh"

#include <iomanip>
#include <stdexcept>

#include <sys/resource.h>

namespace flexsnoop
{

namespace
{

/** Process peak RSS in KB (ru_maxrss unit on Linux); 0 if unknown. */
long
peakRssKb()
{
    struct rusage usage{};
    if (getrusage(RUSAGE_SELF, &usage) != 0)
        return 0;
    return usage.ru_maxrss;
}

/** Seconds since the epoch, fractional. */
double
wallClockTs()
{
    return std::chrono::duration<double>(
               std::chrono::system_clock::now().time_since_epoch())
        .count();
}

/** Minimal JSON string escaping (quotes, backslash, control chars). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                static const char hex[] = "0123456789abcdef";
                out += "\\u00";
                out += hex[(c >> 4) & 0xf];
                out += hex[c & 0xf];
            } else {
                out += c;
            }
        }
    }
    return out;
}

const char *
statusName(SweepLog::Status status)
{
    switch (status) {
    case SweepLog::Status::Ok:
        return "ok";
    case SweepLog::Status::Resumed:
        return "resumed";
    case SweepLog::Status::Failed:
        return "failed";
    case SweepLog::Status::Timeout:
        return "timeout";
    }
    return "unknown";
}

} // namespace

SweepLog::SweepLog(const std::string &path, std::size_t total)
    : _total(total), _start(std::chrono::steady_clock::now())
{
    _file.open(path, std::ios::trunc);
    if (!_file)
        throw std::runtime_error("cannot create sweep log: " + path);
    // Epoch timestamps need fixed notation: the default 6-significant-
    // digit float formatting would round them to e-notation.
    _file << std::fixed << std::setprecision(3);
    _file << "{\"event\":\"sweep_start\",\"ts\":" << wallClockTs()
          << ",\"total\":" << _total << "}\n";
    _file.flush();
}

SweepLog::~SweepLog()
{
    finish();
}

double
SweepLog::elapsedSec() const
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         _start)
        .count();
}

void
SweepLog::cellStart(std::size_t cell, const std::string &workload,
                    const std::string &algorithm,
                    const std::string &predictor)
{
    std::lock_guard<std::mutex> lock(_mutex);
    _file << "{\"event\":\"cell_start\",\"ts\":" << wallClockTs()
          << ",\"cell\":" << cell << ",\"workload\":\""
          << jsonEscape(workload) << "\",\"algorithm\":\""
          << jsonEscape(algorithm) << "\",\"predictor\":\""
          << jsonEscape(predictor) << "\"}\n";
    _file.flush();
}

void
SweepLog::cellFinish(std::size_t cell, const std::string &workload,
                     const std::string &algorithm,
                     const std::string &predictor, Status status,
                     double wall_sec)
{
    std::lock_guard<std::mutex> lock(_mutex);
    ++_completed;
    if (status == Status::Failed || status == Status::Timeout)
        ++_failed;
    // ETA: mean wall time of completed cells extrapolated over the
    // rest. With parallel workers this tracks throughput, not a single
    // cell's latency, because elapsed time is shared across workers.
    const std::size_t remaining =
        _total > _completed ? _total - _completed : 0;
    const double eta = static_cast<double>(remaining) * elapsedSec() /
                       static_cast<double>(_completed);
    _file << "{\"event\":\"cell_finish\",\"ts\":" << wallClockTs()
          << ",\"cell\":" << cell << ",\"workload\":\""
          << jsonEscape(workload) << "\",\"algorithm\":\""
          << jsonEscape(algorithm) << "\",\"predictor\":\""
          << jsonEscape(predictor) << "\",\"status\":\""
          << statusName(status) << "\",\"wall_sec\":" << wall_sec
          << ",\"completed\":" << _completed << ",\"total\":" << _total
          << ",\"eta_sec\":" << eta << ",\"peak_rss_kb\":" << peakRssKb()
          << "}\n";
    _file.flush();
}

void
SweepLog::finish()
{
    std::lock_guard<std::mutex> lock(_mutex);
    if (_finished || !_file.is_open())
        return;
    _finished = true;
    _file << "{\"event\":\"sweep_finish\",\"ts\":" << wallClockTs()
          << ",\"completed\":" << _completed << ",\"failed\":" << _failed
          << ",\"wall_sec\":" << elapsedSec()
          << ",\"peak_rss_kb\":" << peakRssKb() << "}\n";
    _file.flush();
    _file.close();
}

} // namespace flexsnoop
