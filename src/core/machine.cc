#include "core/machine.hh"

#include <cassert>

#include "predictor/exact_predictor.hh"

namespace flexsnoop
{

Machine::Machine(const MachineConfig &config)
    : _config(config), _energy(config.energy)
{
    assert(config.numCmps >= 2);
    assert(config.torus.columns * config.torus.rows == config.numCmps &&
           "torus shape must cover all CMPs");

    // Size the scheduler's near wheel to this configuration's hot
    // latencies before anything can schedule.
    _queue.configureWheel(config.eventQueueNearBuckets());

    _policy = makePolicy(config.algorithm);
    assert(_policy->predictorKind() == config.predictor.kind &&
           "predictor family does not match the algorithm's requirement");

    _ring = std::make_unique<RingNetwork>(_queue, config.numCmps,
                                          config.numRings, config.ring);
    _data = std::make_unique<DataNetwork>(config.torus);
    _memory =
        std::make_unique<MemoryController>(config.numCmps, config.memory);

    _nodes.reserve(config.numCmps);
    for (NodeId n = 0; n < config.numCmps; ++n) {
        auto node = std::make_unique<CmpNode>(
            n, config.coresPerCmp, config.l2Entries, config.l2Ways);
        CmpNode *raw = node.get();
        node->setWritebackFn([this](Addr line, bool from_downgrade) {
            _memory->writeback(line);
            if (from_downgrade)
                _energy.record(EnergyEvent::DowngradeWriteback);
        });

        auto predictor = makePredictor(
            config.predictor, "cmp" + std::to_string(n) + ".pred",
            [raw](Addr line) { return raw->hasSupplier(line); });
        if (auto *exact = dynamic_cast<ExactPredictor *>(predictor.get())) {
            exact->setDowngradeFn(
                [raw](Addr line) { raw->downgrade(line); });
        }
        node->setPredictor(std::move(predictor));
        if (config.writeFiltering) {
            node->setPresencePredictor(
                std::make_unique<PresencePredictor>(
                    "cmp" + std::to_string(n) + ".presence",
                    config.presenceBloomFields));
        }
        _nodes.push_back(std::move(node));
    }

    _controller = std::make_unique<CoherenceController>(
        _queue, *_ring, *_data, *_memory, _energy, *_policy, _nodes,
        config.coherence);
    _checker = std::make_unique<CoherenceChecker>(_nodes);

    if (config.topology.hierarchical()) {
        _topology =
            std::make_unique<Topology>(config.numCmps, config.topology);
        _ring->setTopology(_topology.get());

        // Per-level flexible snooping: the global ring may run its own
        // algorithm's action table at the bridges.
        if (!config.topology.globalAlgorithm.empty())
            _globalPolicy = makePolicy(
                algorithmFromName(config.topology.globalAlgorithm));
        SnoopPolicy *gp =
            _globalPolicy ? _globalPolicy.get() : _policy.get();

        // A bridge can skip reads only when the per-level table maps a
        // negative aggregate answer to Forward; Oracle/Exact consult
        // authoritative member state instead of an aggregate Bloom.
        const bool reads_skip =
            gp->usesPredictor() &&
            gp->onPrediction(false) == Primitive::Forward;
        const bool aggregate_reads =
            reads_skip && gp->predictorKind() != PredictorKind::Perfect &&
            gp->predictorKind() != PredictorKind::Exact;
        for (std::size_t b = 0; b < _topology->numBlocks(); ++b) {
            _bridgeSupplier.push_back(
                aggregate_reads
                    ? std::make_unique<PresencePredictor>(
                          "bridge" + std::to_string(b) + ".supplier",
                          config.bridgeBloomFields)
                    : nullptr);
            _bridgePresence.push_back(
                config.writeFiltering
                    ? std::make_unique<PresencePredictor>(
                          "bridge" + std::to_string(b) + ".presence",
                          config.bridgeBloomFields)
                    : nullptr);
        }
        for (NodeId n = 0; n < config.numCmps; ++n) {
            const std::size_t b = _topology->blockOf(n);
            _nodes[n]->setAggregateMirrors(_bridgeSupplier[b].get(),
                                           _bridgePresence[b].get());
        }
        _controller->setTopology(_topology.get(), gp, &_bridgeSupplier,
                                 &_bridgePresence);
    }

    if (config.faults.armed()) {
        _faults = std::make_unique<FaultInjector>(config.faults);
        _faults->setClock(&_queue);
        _ring->setFaultInjector(_faults.get());
        _controller->setFaultInjector(_faults.get());
    }

    if (config.trace.enabled()) {
        _trace = std::make_unique<TraceSink>(config.trace, config.numCmps,
                                             config.numCores());
        _ring->setTraceSink(_trace.get());
        _controller->setTraceSink(_trace.get());
        _trace->setSnapshotFn(
            [this](Cycle cycle) { snapshotCounters(cycle); });
    }

    if (config.metrics.enabled()) {
        _metrics = std::make_unique<MetricsSampler>(
            config.metrics, config.numCmps, config.numCores());
        registerMetricSeries();
        _queue.setSampleHook(
            config.metrics.intervalCycles,
            [](void *ctx, Cycle now) {
                static_cast<MetricsSampler *>(ctx)->sample(now);
            },
            _metrics.get());
    }
}

void
Machine::registerMetricSeries()
{
    MetricsSampler &m = *_metrics;

    // Controller headline counters: cached Counter& handles, one
    // find-or-create here and a plain load per sample.
    StatGroup &cs = _controller->stats();
    static constexpr const char *kCtrlCounters[] = {
        "read_ring_requests", "read_snoops", "read_link_messages",
        "write_ring_requests", "write_snoops", "write_filtered",
        "collisions", "retries", "watchdog_timeouts",
        "stale_messages_absorbed", "predictor_flip_degrades",
        "incomplete_conclusions_rejected", "retry_storm_aborts",
        "read_cache_supplies", "memory_fetches"};
    for (const char *name : kCtrlCounters)
        m.addCounter(std::string("ctrl.") + name, cs.counter(name));

    // In-flight pressure gauges.
    m.addSeries("ctrl.outstanding", SeriesKind::Gauge,
                [this](Cycle) { return _controller->outstanding(); });
    m.addSeries("ctrl.gated_lines", SeriesKind::Gauge,
                [this](Cycle) { return _controller->gatedLines(); });

    // Scheduler self-observation.
    m.addSeries("queue.executed", SeriesKind::Counter,
                [this](Cycle) { return _queue.executed(); });
    m.addSeries("queue.depth", SeriesKind::Gauge,
                [this](Cycle) { return _queue.pending(); });
    m.addSeries("queue.horizon", SeriesKind::Gauge,
                [this](Cycle) { return _queue.horizonAhead(); });

    // Per-ring traffic and instantaneous link occupancy.
    for (std::size_t r = 0; r < _ring->numRings(); ++r) {
        Ring &ring = _ring->ring(r);
        const std::string prefix = "ring" + std::to_string(r);
        m.addSeries(prefix + ".link_traversals", SeriesKind::Counter,
                    [&ring](Cycle) { return ring.linkTraversals(); });
        m.addSeries(prefix + ".busy_links", SeriesKind::Gauge,
                    [&ring](Cycle now) { return ring.busyLinks(now); });
    }
    m.addSeries("net.global_link_traversals", SeriesKind::Counter,
                [this](Cycle) { return globalLinkTraversals(); });

    // Aggregated predictor accuracy (all nodes). hit_rate_ppm is the
    // derived convenience gauge; the two raw counters are what the
    // drift detector differentiates.
    const auto predictions = [this] {
        return predictorTruePositives() + predictorTrueNegatives() +
               predictorFalsePositives() + predictorFalseNegatives();
    };
    const auto correct = [this] {
        return predictorTruePositives() + predictorTrueNegatives();
    };
    m.addSeries("pred.predictions", SeriesKind::Counter,
                [predictions](Cycle) { return predictions(); });
    m.addSeries("pred.correct", SeriesKind::Counter,
                [correct](Cycle) { return correct(); });
    m.addSeries("pred.hit_rate_ppm", SeriesKind::Gauge,
                [predictions, correct](Cycle) -> std::uint64_t {
                    const std::uint64_t total = predictions();
                    return total ? correct() * 1000000 / total : 0;
                });

    if (_topology) {
        m.addSeries("bridge.skips", SeriesKind::Counter, [this](Cycle) {
            return _controller->bridgeSkips();
        });
        m.addSeries("bridge.descends", SeriesKind::Counter,
                    [this](Cycle) { return _controller->bridgeDescends(); });
        m.addSeries("bridge.skip_ratio_ppm", SeriesKind::Gauge,
                    [this](Cycle) -> std::uint64_t {
                        const std::uint64_t skips =
                            _controller->bridgeSkips();
                        const std::uint64_t total =
                            skips + _controller->bridgeDescends();
                        return total ? skips * 1000000 / total : 0;
                    });
    }

    if (_faults) {
        StatGroup &fs = _faults->stats();
        static constexpr const char *kFaultCounters[] = {
            "link_decisions", "drops_injected", "dups_injected",
            "delays_injected", "predictor_lookups", "predictor_flips"};
        for (const char *name : kFaultCounters)
            m.addCounter(std::string("faults.") + name, fs.counter(name));
    }

    m.addCounter("mem.writebacks", _memory->stats().counter("writebacks"));
    m.addSeries("energy.total_nj", SeriesKind::Gauge, [this](Cycle) {
        return static_cast<std::uint64_t>(_energy.totalNj());
    });
}

void
Machine::snapshotCounters(Cycle cycle)
{
    const auto &s = _controller->stats();
    const auto rec = [&](TraceCounterId id, std::uint64_t value) {
        _trace->record(TraceEvent::CounterSnapshot, cycle, 0, value, 0,
                       kTraceNoNode, static_cast<std::uint16_t>(id));
    };
    rec(TraceCounterId::ReadRingRequests,
        s.counterValue("read_ring_requests"));
    rec(TraceCounterId::ReadSnoops, s.counterValue("read_snoops"));
    rec(TraceCounterId::ReadLinkMessages,
        s.counterValue("read_link_messages"));
    rec(TraceCounterId::WriteRingRequests,
        s.counterValue("write_ring_requests"));
    rec(TraceCounterId::Collisions, s.counterValue("collisions"));
    rec(TraceCounterId::Retries, s.counterValue("retries"));
    rec(TraceCounterId::WatchdogTimeouts,
        s.counterValue("watchdog_timeouts"));
}

void
Machine::resetStats()
{
    _energy.reset();
    _controller->stats().reset();
    if (StatGroup *express = _controller->expressStats())
        express->reset();
    _memory->stats().reset();
    _data->stats().reset();
    if (_faults)
        _faults->stats().reset();
    for (std::size_t r = 0; r < _ring->numRings(); ++r)
        _ring->ring(r).stats().reset();
    for (auto &node : _nodes) {
        node->stats().reset();
        if (node->predictor())
            node->predictor()->stats().reset();
        if (node->presencePredictor())
            node->presencePredictor()->stats().reset();
        for (std::size_t c = 0; c < node->numCores(); ++c)
            node->l2(c).stats().reset();
    }
    for (auto &agg : _bridgeSupplier) {
        if (agg)
            agg->stats().reset();
    }
    for (auto &agg : _bridgePresence) {
        if (agg)
            agg->stats().reset();
    }
}

void
Machine::finalizeEnergy()
{
    std::uint64_t lookups = 0;
    std::uint64_t trainings = 0;
    std::uint64_t downgrade_ops = 0;
    for (const auto &node : _nodes) {
        if (const auto *pred = node->predictor()) {
            lookups += pred->stats().counterValue("lookups");
            trainings += pred->stats().counterValue("trains") +
                         pred->stats().counterValue("removals") +
                         pred->stats().counterValue("exclude_inserts");
        }
        if (const auto *presence = node->presencePredictor()) {
            lookups += presence->stats().counterValue("lookups");
            trainings += presence->stats().counterValue("trains") +
                         presence->stats().counterValue("removals");
        }
        downgrade_ops += node->stats().counterValue("downgrades");
    }
    _energy.record(EnergyEvent::PredictorAccess, lookups);
    _energy.record(EnergyEvent::PredictorTrain, trainings);
    _energy.record(EnergyEvent::DowngradeCacheOp, downgrade_ops);

    // Bridge aggregates (hier topology) are folded into their own
    // categories: their longer-reach SRAMs cost more per access.
    std::uint64_t bridge_lookups = 0;
    std::uint64_t bridge_trains = 0;
    const auto fold = [&](const auto &aggs) {
        for (const auto &agg : aggs) {
            if (!agg)
                continue;
            bridge_lookups += agg->stats().counterValue("lookups");
            bridge_trains += agg->stats().counterValue("trains") +
                             agg->stats().counterValue("removals");
        }
    };
    fold(_bridgeSupplier);
    fold(_bridgePresence);
    _energy.record(EnergyEvent::BridgePredictorAccess, bridge_lookups);
    _energy.record(EnergyEvent::BridgePredictorTrain, bridge_trains);
}

std::uint64_t
Machine::sumPredictorCounter(const std::string &name) const
{
    std::uint64_t total = 0;
    for (const auto &node : _nodes) {
        if (const auto *pred = node->predictor())
            total += pred->stats().counterValue(name);
    }
    return total;
}

std::uint64_t
Machine::predictorTruePositives() const
{
    return sumPredictorCounter("true_positives");
}

std::uint64_t
Machine::predictorTrueNegatives() const
{
    return sumPredictorCounter("true_negatives");
}

std::uint64_t
Machine::predictorFalsePositives() const
{
    return sumPredictorCounter("false_positives");
}

std::uint64_t
Machine::predictorFalseNegatives() const
{
    return sumPredictorCounter("false_negatives");
}

std::uint64_t
Machine::downgrades() const
{
    std::uint64_t total = 0;
    for (const auto &node : _nodes)
        total += node->stats().counterValue("downgrades");
    return total;
}

} // namespace flexsnoop
