/**
 * @file
 * Strict numeric parsing for command-line flag values.
 *
 * `std::stoul`-style parsing silently accepts trailing garbage
 * ("10x" -> 10) and reports failures as a bare "stoul" message with no
 * hint of which flag was wrong. These helpers validate the whole
 * string with std::from_chars and throw std::invalid_argument naming
 * the flag and the offending value, so drivers can print one clear
 * diagnostic and exit.
 */

#ifndef FLEXSNOOP_CORE_CLI_PARSE_HH
#define FLEXSNOOP_CORE_CLI_PARSE_HH

#include <charconv>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace flexsnoop
{

/**
 * Parse @p value as an unsigned decimal integer for flag @p flag.
 * The whole string must be consumed; leading '+'/'-', whitespace,
 * hex prefixes, and trailing characters are all rejected.
 */
inline std::uint64_t
parseUnsignedArg(const std::string &flag, const std::string &value)
{
    std::uint64_t out = 0;
    const char *begin = value.data();
    const char *end = begin + value.size();
    const auto [ptr, ec] = std::from_chars(begin, end, out);
    if (ec != std::errc() || ptr != end || value.empty()) {
        throw std::invalid_argument("invalid value for " + flag + ": '" +
                                    value +
                                    "' (expected an unsigned integer)");
    }
    return out;
}

/**
 * Parse @p value as a decimal floating-point number for flag @p flag.
 * Accepts the usual fixed/scientific forms ("0.5", "2e-3"); the whole
 * string must be consumed.
 */
inline double
parseDoubleArg(const std::string &flag, const std::string &value)
{
    double out = 0.0;
    const char *begin = value.data();
    const char *end = begin + value.size();
    const auto [ptr, ec] = std::from_chars(begin, end, out);
    if (ec != std::errc() || ptr != end || value.empty()) {
        throw std::invalid_argument("invalid value for " + flag + ": '" +
                                    value + "' (expected a number)");
    }
    return out;
}

} // namespace flexsnoop

#endif // FLEXSNOOP_CORE_CLI_PARSE_HH
