/**
 * @file
 * flexsnoop_trace — decoder/analyzer for `.fstrace` event traces
 * recorded with `flexsnoop_sim --trace` (docs/TRACING.md).
 *
 * Usage:
 *   flexsnoop_trace [options] TRACE.fstrace
 *     (no option)         summary: header, counters, span count, and a
 *                         per-event-type breakdown
 *     --json PATH         write Chrome trace-event JSON (open in
 *                         Perfetto or chrome://tracing)
 *     --critical-path     per-transaction latency decomposition table;
 *                         the components of each row sum exactly to the
 *                         transaction's reported read latency
 *     --top N             N slowest completed transactions with their
 *                         full hop-by-hop timelines
 *     --version           print version and build type
 *
 * Options combine: each selected report is printed in the order above,
 * all from one decode of the input.
 */

#include <fstream>
#include <iostream>
#include <string>

#include "core/cli_parse.hh"
#include "core/version.hh"
#include "trace/trace_analysis.hh"
#include "trace/trace_reader.hh"

#ifndef FLEXSNOOP_BUILD_TYPE
#define FLEXSNOOP_BUILD_TYPE "unknown"
#endif

using namespace flexsnoop;

namespace
{

void
usage()
{
    std::cerr << "usage: flexsnoop_trace [--json PATH] "
                 "[--critical-path] [--top N] TRACE.fstrace\n";
}

} // namespace

int
main(int argc, char **argv)
{
    std::string input, json_path;
    bool critical_path = false;
    std::uint64_t top = 0;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                usage();
                std::exit(2);
            }
            return argv[++i];
        };
        try {
            if (arg == "--json") {
                json_path = next();
            } else if (arg == "--critical-path") {
                critical_path = true;
            } else if (arg == "--top") {
                top = parseUnsignedArg(arg, next());
            } else if (arg == "--version") {
                std::cout << "flexsnoop_trace " << kVersionString << " ("
                          << FLEXSNOOP_BUILD_TYPE << " build)\n";
                return 0;
            } else if (arg == "--help" || arg == "-h") {
                usage();
                return 0;
            } else if (!arg.empty() && arg[0] == '-') {
                std::cerr << "unknown argument: " << arg << '\n';
                usage();
                return 2;
            } else if (input.empty()) {
                input = arg;
            } else {
                std::cerr << "more than one input file: " << input
                          << ", " << arg << '\n';
                usage();
                return 2;
            }
        } catch (const std::exception &e) {
            std::cerr << "error: " << e.what() << '\n';
            return 2;
        }
    }
    if (input.empty()) {
        usage();
        return 2;
    }

    try {
        const TraceFile file = loadTrace(input);
        const TraceAnalysis analysis = analyzeTrace(file);

        writeSummary(std::cout, file, analysis);
        if (!json_path.empty()) {
            std::ofstream os(json_path, std::ios::binary);
            if (!os)
                throw std::runtime_error("cannot open " + json_path +
                                         " for writing");
            writeChromeTrace(os, file, analysis);
            if (!os)
                throw std::runtime_error("write to " + json_path +
                                         " failed");
            std::cerr << "wrote " << json_path << '\n';
        }
        if (critical_path)
            writeCriticalPathTable(std::cout, file, analysis);
        if (top > 0)
            writeTopSlowest(std::cout, file, analysis, top);
    } catch (const std::exception &e) {
        std::cerr << "error: " << e.what() << '\n';
        return 1;
    }
    return 0;
}
