/**
 * @file
 * flexsnoop_metrics — offline analyzer for `.fsmetrics` time-series
 * captures (docs/TELEMETRY.md).
 *
 * Usage:
 *   flexsnoop_metrics [options] FILE.fsmetrics
 *     --summary            per-series summary table (the default)
 *     --csv PATH           export all columns as CSV ("-" = stdout)
 *     --prom PATH          export final values in Prometheus textfile
 *                          format ("-" = stdout)
 *     --align TRACE        cross-validate against the CounterSnapshot
 *                          records of a .fstrace from the same run
 *     --detect             run the health detectors and report onset
 *                          cycles (retry storm, predictor drift, ring
 *                          saturation, queue-horizon blowout)
 *     --json               machine-readable --detect output
 *     --sustain N          detector trip persistence (samples)
 *     --version --help
 *
 * Exit status: 0 on success (findings or not), 1 on error, 2 on usage.
 * Scripts gate on the "fired" fields of --detect --json, not on the
 * exit status, so a monitoring pass that finds problems still exits 0.
 */

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/cli_parse.hh"
#include "core/version.hh"
#include "telemetry/health.hh"
#include "telemetry/metrics_reader.hh"
#include "trace/trace_reader.hh"

#ifndef FLEXSNOOP_BUILD_TYPE
#define FLEXSNOOP_BUILD_TYPE "unknown"
#endif

using namespace flexsnoop;

namespace
{

void
usage()
{
    std::cerr << "usage: flexsnoop_metrics [options] FILE.fsmetrics\n"
                 "  --summary            per-series summary (default)\n"
                 "  --csv PATH|-         export columns as CSV\n"
                 "  --prom PATH|-        Prometheus textfile export\n"
                 "  --align TRACE        cross-check a .fstrace capture\n"
                 "  --detect [--json]    run health detectors\n"
                 "  --sustain N          detector trip persistence\n"
                 "  --version --help\n";
}

const char *
kindName(SeriesKind kind)
{
    return kind == SeriesKind::Counter ? "counter" : "gauge";
}

void
printSummary(const MetricsFile &file, const std::string &path)
{
    const auto &h = file.header;
    std::cout << path << ": .fsmetrics v" << h.version << ", "
              << h.seriesCount << " series x " << h.sampleCount
              << " samples, interval " << h.intervalCycles << " cycles, "
              << h.numNodes << " nodes / " << h.numCores << " cores\n";
    if (h.measureStartCycle == kMetricsNoMeasureStart)
        std::cout << "measure start: not reached (all-warmup capture)\n";
    else
        std::cout << "measure start: cycle " << h.measureStartCycle
                  << " (statistics reset here)\n";
    if (file.cycles.empty())
        return;
    std::cout << "cycles " << file.cycles.front() << ".."
              << file.cycles.back() << "\n\n";

    std::cout << std::left << std::setw(36) << "series" << std::setw(9)
              << "kind" << std::right << std::setw(12) << "first"
              << std::setw(14) << "last" << std::setw(14) << "min"
              << std::setw(14) << "max" << '\n'
              << std::string(99, '-') << '\n';
    for (std::size_t s = 0; s < file.names.size(); ++s) {
        const auto &col = file.columns[s];
        const auto [mn, mx] = std::minmax_element(col.begin(), col.end());
        std::cout << std::left << std::setw(36) << file.names[s]
                  << std::setw(9) << kindName(file.kinds[s]) << std::right
                  << std::setw(12) << col.front() << std::setw(14)
                  << col.back() << std::setw(14) << *mn << std::setw(14)
                  << *mx << '\n';
    }
}

/** Open @p path for writing, or alias stdout for "-". */
std::ostream &
openOut(const std::string &path, std::ofstream &file)
{
    if (path == "-")
        return std::cout;
    file.open(path, std::ios::trunc);
    if (!file)
        throw std::runtime_error("cannot create output file: " + path);
    return file;
}

void
exportCsv(const MetricsFile &file, const std::string &path)
{
    std::ofstream out_file;
    std::ostream &os = openOut(path, out_file);
    os << "cycle";
    for (const auto &name : file.names)
        os << ',' << name;
    os << '\n';
    for (std::size_t i = 0; i < file.cycles.size(); ++i) {
        os << file.cycles[i];
        for (const auto &col : file.columns)
            os << ',' << col[i];
        os << '\n';
    }
}

void
exportProm(const MetricsFile &file, const std::string &path)
{
    std::ofstream out_file;
    std::ostream &os = openOut(path, out_file);
    if (file.cycles.empty())
        return;
    os << "# HELP flexsnoop_sample_cycle Simulated cycle of the last "
          "metric sample\n"
          "# TYPE flexsnoop_sample_cycle gauge\n"
          "flexsnoop_sample_cycle "
       << file.cycles.back() << '\n';
    for (std::size_t s = 0; s < file.names.size(); ++s) {
        std::string prom = "flexsnoop_" + file.names[s];
        for (char &c : prom) {
            if (c == '.' || c == '-')
                c = '_';
        }
        os << "# TYPE " << prom << ' ' << kindName(file.kinds[s]) << '\n'
           << prom << ' ' << file.columns[s].back() << '\n';
    }
}

/** ctrl.* series mirrored by .fstrace CounterSnapshot records. */
const char *
alignedSeries(TraceCounterId id)
{
    switch (id) {
    case TraceCounterId::ReadRingRequests:
        return "ctrl.read_ring_requests";
    case TraceCounterId::ReadSnoops:
        return "ctrl.read_snoops";
    case TraceCounterId::ReadLinkMessages:
        return "ctrl.read_link_messages";
    case TraceCounterId::WriteRingRequests:
        return "ctrl.write_ring_requests";
    case TraceCounterId::Collisions:
        return "ctrl.collisions";
    case TraceCounterId::Retries:
        return "ctrl.retries";
    case TraceCounterId::WatchdogTimeouts:
        return "ctrl.watchdog_timeouts";
    default:
        return nullptr;
    }
}

/**
 * Cross-validate the two observation channels of one run: both sample
 * the same cumulative counters (at different instants), and both reset
 * at the same warmup barrier, so per counter the union of (cycle,
 * value) points past the barrier must be non-decreasing. A violation
 * means the files are from different runs — or a capture bug.
 */
int
alignWithTrace(const MetricsFile &file, const std::string &trace_path)
{
    const TraceFile trace = loadTrace(trace_path);

    // The barrier cycle as each file recorded it; points before either
    // are pre-reset and excluded.
    std::uint64_t barrier = 0;
    if (file.header.measureStartCycle != kMetricsNoMeasureStart)
        barrier = file.header.measureStartCycle;
    for (const TraceRecord &rec : trace.records) {
        if (rec.event() == TraceEvent::MeasureStart)
            barrier = std::max(barrier, rec.cycle);
    }

    std::cout << "aligning " << trace_path << " (" << trace.records.size()
              << " records) from cycle " << barrier << ":\n";
    bool any = false;
    int inconsistent = 0;
    for (std::uint16_t id = 0;
         id < static_cast<std::uint16_t>(TraceCounterId::NumCounters);
         ++id) {
        const char *series =
            alignedSeries(static_cast<TraceCounterId>(id));
        const std::vector<std::uint64_t> *column =
            series ? file.column(series) : nullptr;
        if (!column)
            continue;

        std::vector<std::pair<std::uint64_t, std::uint64_t>> points;
        for (const TraceRecord &rec : trace.records) {
            if (rec.event() == TraceEvent::CounterSnapshot &&
                rec.a == id && rec.cycle >= barrier)
                points.emplace_back(rec.cycle, rec.arg0);
        }
        const std::size_t trace_points = points.size();
        for (std::size_t i = 0; i < file.cycles.size(); ++i) {
            if (file.cycles[i] >= barrier)
                points.emplace_back(file.cycles[i], (*column)[i]);
        }
        std::sort(points.begin(), points.end());

        any = true;
        bool ok = true;
        for (std::size_t i = 1; i < points.size(); ++i) {
            if (points[i].second < points[i - 1].second) {
                std::cout << "  " << series << ": INCONSISTENT at cycle "
                          << points[i].first << " (" << points[i].second
                          << " after " << points[i - 1].second
                          << " at cycle " << points[i - 1].first << ")\n";
                ok = false;
                ++inconsistent;
                break;
            }
        }
        if (ok) {
            std::cout << "  " << series << ": consistent ("
                      << trace_points << " trace snapshots vs "
                      << points.size() - trace_points
                      << " metric samples)\n";
        }
    }
    if (!any) {
        std::cout << "  no overlapping counters (trace has no "
                     "CounterSnapshot records, or ctrl.* was filtered "
                     "out of the metrics)\n";
    }
    return inconsistent == 0 ? 0 : 1;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (const char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    return out;
}

void
printFindings(const std::vector<HealthFinding> &findings, bool as_json,
              const std::string &path)
{
    if (as_json) {
        std::ostringstream os;
        os << "{\"file\":\"" << jsonEscape(path) << "\",\"findings\":[";
        for (std::size_t i = 0; i < findings.size(); ++i) {
            const HealthFinding &f = findings[i];
            os << (i ? "," : "") << "{\"detector\":\"" << f.detector
               << "\",\"series\":\"" << jsonEscape(f.series)
               << "\",\"fired\":" << (f.fired ? "true" : "false")
               << ",\"onset_cycle\":" << f.onsetCycle
               << ",\"baseline\":" << f.baseline << ",\"peak\":" << f.peak
               << ",\"detail\":\"" << jsonEscape(f.detail) << "\"}";
        }
        os << "]}";
        std::cout << os.str() << '\n';
        return;
    }
    if (findings.empty()) {
        std::cout << "no detector had enough data to evaluate\n";
        return;
    }
    for (const HealthFinding &f : findings) {
        std::cout << (f.fired ? "[FIRED] " : "[ok]    ") << std::left
                  << std::setw(16) << f.detector << ' ' << f.detail
                  << '\n';
    }
}

} // namespace

int
main(int argc, char **argv)
{
    std::string input, csv_path, prom_path, align_path;
    bool detect = false, as_json = false, summary = false;
    HealthThresholds thresholds;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                usage();
                std::exit(2);
            }
            return argv[++i];
        };
        try {
            if (arg == "--summary") {
                summary = true;
            } else if (arg == "--csv") {
                csv_path = next();
            } else if (arg == "--prom") {
                prom_path = next();
            } else if (arg == "--align") {
                align_path = next();
            } else if (arg == "--detect") {
                detect = true;
            } else if (arg == "--json") {
                as_json = true;
            } else if (arg == "--sustain") {
                thresholds.sustainSamples = static_cast<std::size_t>(
                    parseUnsignedArg(arg, next()));
            } else if (arg == "--version") {
                std::cout << "flexsnoop_metrics " << kVersionString << " ("
                          << FLEXSNOOP_BUILD_TYPE << " build)\n";
                return 0;
            } else if (arg == "--help" || arg == "-h") {
                usage();
                return 0;
            } else if (!arg.empty() && arg[0] == '-') {
                std::cerr << "unknown argument: " << arg << '\n';
                usage();
                return 2;
            } else if (input.empty()) {
                input = arg;
            } else {
                std::cerr << "multiple input files given\n";
                usage();
                return 2;
            }
        } catch (const std::exception &e) {
            std::cerr << "error: " << e.what() << '\n';
            return 2;
        }
    }
    if (input.empty()) {
        usage();
        return 2;
    }

    try {
        const MetricsFile file = loadMetrics(input);

        const bool only_summary = !detect && csv_path.empty() &&
                                  prom_path.empty() && align_path.empty();
        if (summary || only_summary)
            printSummary(file, input);
        if (!csv_path.empty()) {
            exportCsv(file, csv_path);
            if (csv_path != "-")
                std::cerr << "wrote " << csv_path << '\n';
        }
        if (!prom_path.empty()) {
            exportProm(file, prom_path);
            if (prom_path != "-")
                std::cerr << "wrote " << prom_path << '\n';
        }
        int align_status = 0;
        if (!align_path.empty())
            align_status = alignWithTrace(file, align_path);
        if (detect)
            printFindings(runHealthDetectors(file, thresholds), as_json,
                          input);
        return align_status;
    } catch (const std::exception &e) {
        std::cerr << "error: " << e.what() << '\n';
        return 1;
    }
}
