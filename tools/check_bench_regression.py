#!/usr/bin/env python3
"""Compare freshly produced BENCH_*.json records against the committed
baselines in bench/records/ and fail on performance regressions.

Only machine-independent metrics gate the build:

  * ``speedup_*`` (same-machine A/B ratios, e.g. wheel vs heap) and
    ``wall_speedup_express`` must not drop by more than the threshold;
  * ``event_reduction_ratio`` must not drop by more than the threshold;
  * ``events_per_txn_*`` are deterministic event counts and must not
    grow by more than the threshold;
  * ``results_identical`` must stay exactly 1.

Absolute timings (``ns_per_*``, ``wall_seconds``, ``overhead_pct``,
``simulations_per_second``) and runner-shape metrics (``jobs``, the
parallel-scaling ``speedup`` of fig4, ``hardware_concurrency``) vary
with the host, so they are reported but never fail the check.

Usage:
    check_bench_regression.py --baseline bench/records \
        --current bench-records [--threshold 0.10]

Exit status: 0 when no gating metric regressed, 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

# (pattern, direction) applied in order; first match wins.
# direction: "higher" = regression when it drops, "lower" = regression
# when it grows, "exact" = must match the baseline bit for bit.
GATING_RULES = [
    (re.compile(r"^results_identical$"), "exact"),
    (re.compile(r"^metrics_overhead_within_budget$"), "exact"),
    (re.compile(r"^speedup_.+"), "higher"),
    (re.compile(r"^wall_speedup_"), "higher"),
    (re.compile(r"^event_reduction_ratio$"), "higher"),
    (re.compile(r"^events_per_txn_"), "lower"),
]


def rule_for(metric: str):
    for pattern, direction in GATING_RULES:
        if pattern.match(metric):
            return direction
    return None


def load_record(path: Path) -> dict:
    with path.open() as fh:
        record = json.load(fh)
    if record.get("schema") != "flexsnoop-bench-v1":
        raise ValueError(f"{path}: unexpected schema {record.get('schema')!r}")
    return record["metrics"]


def compare(name: str, baseline: dict, current: dict,
            threshold: float) -> list[str]:
    failures = []
    for metric, base in sorted(baseline.items()):
        direction = rule_for(metric)
        if metric not in current:
            failures.append(f"{name}: metric '{metric}' missing from "
                            "the new record")
            continue
        cur = current[metric]
        if base:
            delta = (cur - base) / base
        else:
            delta = 0.0 if cur == base else float("inf")
        marker = " "
        if direction == "exact":
            regressed = cur != base
        elif direction == "higher":
            regressed = cur < base * (1.0 - threshold)
        elif direction == "lower":
            regressed = cur > base * (1.0 + threshold)
        else:  # informational only
            regressed = False
            marker = "i"
        if regressed:
            marker = "X"
            failures.append(
                f"{name}: {metric} regressed: {base:g} -> {cur:g} "
                f"({delta:+.1%}, gate {direction}, "
                f"threshold {threshold:.0%})")
        print(f"  [{marker}] {name:24s} {metric:32s} "
              f"{base:>14g} -> {cur:>14g}  ({delta:+7.1%})")
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", type=Path, default=Path("bench/records"),
                        help="directory of committed BENCH_*.json baselines")
    parser.add_argument("--current", type=Path, required=True,
                        help="directory of freshly produced BENCH_*.json")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="fractional regression allowed on gating "
                             "metrics (default 0.10)")
    args = parser.parse_args()

    current_files = sorted(args.current.glob("BENCH_*.json"))
    if not current_files:
        print(f"error: no BENCH_*.json under {args.current}", file=sys.stderr)
        return 1

    print(f"bench regression check: baseline={args.baseline} "
          f"current={args.current} threshold={args.threshold:.0%}")
    print("  [X] gating regression  [ ] gating ok  [i] informational")
    failures: list[str] = []
    checked = 0
    for cur_path in current_files:
        base_path = args.baseline / cur_path.name
        if not base_path.exists():
            print(f"  [i] {cur_path.name}: no committed baseline, skipped")
            continue
        checked += 1
        failures += compare(cur_path.name, load_record(base_path),
                            load_record(cur_path), args.threshold)

    if checked == 0:
        print("error: no record overlapped a committed baseline",
              file=sys.stderr)
        return 1
    if failures:
        print(f"\n{len(failures)} regression(s):", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"\nOK: {checked} record(s) checked, no gating regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
