/**
 * @file
 * flexsnoop_sim — command-line driver for the simulator.
 *
 * Runs one or more (workload, algorithm) combinations on a configurable
 * machine and prints a summary table; optionally exports the full
 * results as CSV or JSON for plotting.
 *
 * Usage:
 *   flexsnoop_sim [options] [key=value ...]
 *     --workloads w1,w2,...   profiles (default: mini)
 *     --algorithms a1,a2,...  algorithms or "paper" (default: paper)
 *     --predictor NAME        force a predictor (sub512..exa8k, y2k, n2k)
 *     --refs N                measured refs per core (profile default)
 *     --warmup N              warmup refs per core (profile default)
 *     --jobs N                parallel simulations (default: hardware
 *                             concurrency; 1 = serial)
 *     --trace-out PATH        save the generated traces (binary)
 *     --trace-in PATH         replay traces from a file instead
 *     --csv PATH              write results as CSV
 *     --json PATH             write results as JSON
 *     key=value               machine overrides (see config_parser.hh)
 *
 * Examples:
 *   flexsnoop_sim --workloads barnes,specjbb --algorithms lazy,supagg
 *   flexsnoop_sim --workloads ocean --algorithms paper --csv out.csv \
 *       num_rings=1 prefetch_enabled=off
 */

#include <iomanip>
#include <iostream>
#include <sstream>

#include "core/config_parser.hh"
#include "core/parallel_executor.hh"
#include "core/report.hh"
#include "workload/synthetic_generator.hh"
#include "workload/trace_io.hh"

using namespace flexsnoop;

namespace
{

std::vector<std::string>
splitCommas(const std::string &list)
{
    std::vector<std::string> out;
    std::istringstream iss(list);
    std::string item;
    while (std::getline(iss, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

void
usage()
{
    std::cerr
        << "usage: flexsnoop_sim [options] [key=value ...]\n"
           "  --workloads w1,w2,... --algorithms a1,...|paper\n"
           "  --predictor NAME --refs N --warmup N --jobs N\n"
           "  --trace-out PATH --trace-in PATH --csv PATH --json PATH\n"
           "machine override keys:";
    for (const auto &key : configKeys())
        std::cerr << ' ' << key;
    std::cerr << '\n';
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> workloads = {"mini"};
    std::vector<Algorithm> algorithms = paperAlgorithms();
    std::string predictor, trace_out, trace_in, csv_path, json_path;
    std::size_t refs = 0, warmup = SIZE_MAX;
    std::size_t jobs = ParallelExecutor::defaultWorkers();
    std::vector<std::string> overrides;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                usage();
                std::exit(2);
            }
            return argv[++i];
        };
        try {
            if (arg == "--workloads") {
                workloads = splitCommas(next());
            } else if (arg == "--algorithms") {
                const std::string value = next();
                if (value == "paper") {
                    algorithms = paperAlgorithms();
                } else {
                    algorithms.clear();
                    for (const auto &name : splitCommas(value))
                        algorithms.push_back(algorithmFromName(name));
                }
            } else if (arg == "--predictor") {
                predictor = next();
            } else if (arg == "--refs") {
                refs = std::stoul(next());
            } else if (arg == "--warmup") {
                warmup = std::stoul(next());
            } else if (arg == "--jobs") {
                jobs = std::stoul(next());
            } else if (arg == "--trace-out") {
                trace_out = next();
            } else if (arg == "--trace-in") {
                trace_in = next();
            } else if (arg == "--csv") {
                csv_path = next();
            } else if (arg == "--json") {
                json_path = next();
            } else if (arg == "--help" || arg == "-h") {
                usage();
                return 0;
            } else if (arg.find('=') != std::string::npos) {
                overrides.push_back(arg);
            } else {
                std::cerr << "unknown argument: " << arg << '\n';
                usage();
                return 2;
            }
        } catch (const std::exception &e) {
            std::cerr << "error: " << e.what() << '\n';
            return 2;
        }
    }

    // Plan first, run second: configs are prepared serially (overrides
    // mutate them), then every (workload, algorithm) combination runs
    // as an independent job on the worker pool. Results keep plan
    // order, so the output is identical to the serial loop.
    struct PlannedRun
    {
        MachineConfig cfg;
        std::size_t traces;
        std::string workload;
    };
    std::vector<CoreTraces> all_traces;
    std::vector<PlannedRun> plan;
    std::vector<RunResult> results;
    try {
        for (const auto &workload : workloads) {
            WorkloadProfile profile = profileByName(workload);
            if (refs > 0)
                profile.refsPerCore = refs;
            if (warmup != SIZE_MAX)
                profile.warmupRefs = warmup;

            CoreTraces traces;
            if (!trace_in.empty()) {
                traces = loadTraces(trace_in);
            } else {
                traces = SyntheticGenerator(profile).generate();
            }
            if (!trace_out.empty())
                saveTraces(trace_out, traces);
            all_traces.push_back(std::move(traces));

            for (Algorithm algorithm : algorithms) {
                MachineConfig cfg = MachineConfig::paperDefault(
                    algorithm, profile.coresPerCmp);
                cfg.setNumCmps(profile.numCmps());
                applyOverrides(cfg, overrides);
                if (!predictor.empty() &&
                    cfg.predictor.kind != PredictorKind::None &&
                    cfg.predictor.kind != PredictorKind::Perfect) {
                    applyOverride(cfg, "predictor=" + predictor);
                }
                std::cerr << "planned " << workload << " / "
                          << toString(algorithm) << '\n';
                plan.push_back(PlannedRun{std::move(cfg),
                                          all_traces.size() - 1,
                                          profile.name});
            }
        }

        std::cerr << "running " << plan.size() << " simulation(s) on "
                  << jobs << " worker(s)...\n";
        ParallelExecutor pool(jobs);
        results = pool.map(plan.size(), [&](std::size_t i) {
            const PlannedRun &run = plan[i];
            return runSimulation(run.cfg, all_traces[run.traces],
                                 run.workload);
        });
    } catch (const std::exception &e) {
        std::cerr << "error: " << e.what() << '\n';
        return 1;
    }

    // Summary table.
    std::cout << std::left << std::setw(12) << "workload" << std::setw(14)
              << "algorithm" << std::right << std::setw(13)
              << "exec cycles" << std::setw(12) << "snoops/req"
              << std::setw(11) << "msgs/req" << std::setw(13)
              << "energy (uJ)" << std::setw(10) << "lat p50"
              << std::setw(10) << "lat p95" << '\n'
              << std::string(95, '-') << '\n';
    for (const auto &r : results) {
        std::cout << std::left << std::setw(12) << r.workload
                  << std::setw(14) << r.algorithm << std::right
                  << std::setw(13) << r.execCycles << std::fixed
                  << std::setprecision(2) << std::setw(12)
                  << r.snoopsPerReadRequest << std::setw(11)
                  << r.readLinkMessagesPerRequest << std::setprecision(1)
                  << std::setw(13) << r.energyNj / 1e3
                  << std::setprecision(0) << std::setw(10)
                  << r.p50ReadLatency << std::setw(10)
                  << r.p95ReadLatency << '\n';
    }

    if (!csv_path.empty()) {
        saveCsv(csv_path, results);
        std::cerr << "wrote " << csv_path << '\n';
    }
    if (!json_path.empty()) {
        saveJson(json_path, results);
        std::cerr << "wrote " << json_path << '\n';
    }
    return 0;
}
