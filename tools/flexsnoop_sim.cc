/**
 * @file
 * flexsnoop_sim — command-line driver for the simulator.
 *
 * Runs one or more (workload, algorithm) combinations on a configurable
 * machine and prints a summary table; optionally exports the full
 * results as CSV or JSON for plotting.
 *
 * Usage:
 *   flexsnoop_sim [options] [key=value ...]
 *     --workloads w1,w2,...   profiles (default: mini)
 *     --algorithms a1,a2,...  algorithms or "paper" (default: paper)
 *     --predictor NAME        force a predictor (sub512..exa8k, y2k, n2k)
 *     --refs N                measured refs per core (profile default)
 *     --warmup N              warmup refs per core (profile default)
 *     --jobs N                parallel simulations (default: hardware
 *                             concurrency; 1 = serial)
 *     --topology flat|hier    ring topology (docs/TOPOLOGY.md)
 *     --local-rings N         local rings in the hierarchy (hier only)
 *     --global-hop-cycles N   latency of one global-ring hop
 *     --trace-out PATH        save the generated traces (binary)
 *     --trace-in PATH         replay traces from a file instead
 *     --trace SPEC            record a .fstrace event trace per cell
 *                             (docs/TRACING.md); SPEC is
 *                             FILE[,ring_kb=N][,mode=drop|spill]
 *                             [,snapshot=N]. With more than one cell,
 *                             "_<workload>_<algorithm>" is inserted
 *                             before FILE's extension.
 *     --metrics SPEC          sample counters/gauges into a .fsmetrics
 *                             time-series file per cell
 *                             (docs/TELEMETRY.md); SPEC is
 *                             FILE[,interval=N][,select=GLOB]. Per-cell
 *                             naming as with --trace. Sampling changes
 *                             no result: RunResult and any .fstrace are
 *                             bit-identical with it on or off.
 *     --sweep-log PATH        JSON-lines sweep progress log: cell
 *                             start/finish with status, wall time, ETA
 *                             and peak RSS (docs/TELEMETRY.md)
 *     --csv PATH              write results as CSV
 *     --json PATH             write results as JSON
 *     --list                  list workload profiles, algorithms, and
 *                             metric series selectors
 *     --version               print version and build type
 *     key=value               machine overrides (see config_parser.hh)
 *
 * Unreliable-ring mode and sweep hardening (docs/FAULTS.md):
 *     --faults SPEC           arm fault injection; SPEC is a comma list
 *                             of drop=R, dup=R, delay=R, predictor=R,
 *                             seed=S, delay_cycles=N
 *     --watchdog-cycles N     per-transaction watchdog timeout
 *                             (defaults to 20000 when --faults is on)
 *     --max-retries N         squash/watchdog reissue cap per request
 *     --cell-timeout SEC      per-cell wall-clock budget
 *     --checkpoint PATH       incremental result CSV; re-running skips
 *                             cells already present (sweep resume)
 *     --dump-dir PATH         write stuck-transaction dumps here
 *   Any of these switches routes the sweep through the hardened runner:
 *   a failing cell is reported (and the exit status is 1) instead of
 *   aborting the remaining cells.
 *
 * Examples:
 *   flexsnoop_sim --workloads barnes,specjbb --algorithms lazy,supagg
 *   flexsnoop_sim --workloads ocean --algorithms paper --csv out.csv \
 *       num_rings=1 prefetch_enabled=off
 *   flexsnoop_sim --workloads mini --faults drop=1e-3,seed=7 \
 *       --dump-dir dumps
 */

#include <chrono>
#include <iomanip>
#include <iostream>
#include <memory>
#include <sstream>

#include "core/cli_parse.hh"
#include "core/config_parser.hh"
#include "core/experiment.hh"
#include "core/parallel_executor.hh"
#include "core/report.hh"
#include "core/sweep_log.hh"
#include "core/version.hh"
#include "workload/profile.hh"
#include "workload/synthetic_generator.hh"
#include "workload/trace_io.hh"

#ifndef FLEXSNOOP_BUILD_TYPE
#define FLEXSNOOP_BUILD_TYPE "unknown"
#endif

using namespace flexsnoop;

namespace
{

std::vector<std::string>
splitCommas(const std::string &list)
{
    std::vector<std::string> out;
    std::istringstream iss(list);
    std::string item;
    while (std::getline(iss, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

void
usage()
{
    std::cerr
        << "usage: flexsnoop_sim [options] [key=value ...]\n"
           "  --workloads w1,w2,... --algorithms a1,...|paper\n"
           "  --predictor NAME --refs N --warmup N --jobs N\n"
           "  --topology flat|hier --local-rings N "
           "--global-hop-cycles N\n"
           "  --trace-out PATH --trace-in PATH --csv PATH --json PATH\n"
           "  --trace FILE[,ring_kb=N][,mode=drop|spill][,snapshot=N]\n"
           "  --metrics FILE[,interval=N][,select=GLOB] "
           "--sweep-log PATH\n"
           "  --faults drop=R,dup=R,delay=R,predictor=R,seed=S,start=N\n"
           "  --watchdog-cycles N --max-retries N --cell-timeout SEC\n"
           "  --checkpoint PATH --dump-dir PATH\n"
           "  --list --version --help\n"
           "machine override keys:";
    for (const auto &key : configKeys())
        std::cerr << ' ' << key;
    std::cerr << '\n';
}

void
printVersion()
{
    std::cout << "flexsnoop_sim " << kVersionString << " ("
              << FLEXSNOOP_BUILD_TYPE << " build)\n";
}

void
printList()
{
    const auto profile_line = [](const WorkloadProfile &p,
                                 const std::string &note) {
        std::cout << "  " << std::left << std::setw(14) << p.name
                  << p.numCores << " cores / " << p.numCmps()
                  << " CMPs, " << p.refsPerCore << " refs/core"
                  << (note.empty() ? "" : ", " + note) << '\n';
    };
    std::cout << "workload profiles:\n";
    profile_line(miniProfile(), "small/fast SPLASH-2-like");
    for (const auto &p : splash2Profiles())
        profile_line(p, "SPLASH-2-like");
    profile_line(specJbbProfile(), "SPECjbb-like, little sharing");
    profile_line(specWebProfile(), "SPECweb-like, moderate sharing");

    struct AlgoDesc
    {
        const char *name;
        const char *desc;
    };
    // One line per paper algorithm (Tables 1 and 3), plus the adaptive
    // extension; names are accepted case-insensitively.
    static const AlgoDesc algos[] = {
        {"lazy", "snoop then forward at every node (fewest messages)"},
        {"eager", "forward then snoop at every node (lowest latency)"},
        {"oracle", "perfect predictor: snoop only at the supplier"},
        {"subset",
         "subset predictor: positive snoops-then-forwards, negative "
         "forwards-then-snoops"},
        {"supersetcon",
         "superset predictor, conservative: positive "
         "snoops-then-forwards, negative just forwards"},
        {"supersetagg",
         "superset predictor, aggressive: positive "
         "forwards-then-snoops, negative just forwards"},
        {"exact",
         "exact predictor with forced downgrades: positive "
         "snoops-then-forwards, negative just forwards"},
        {"adaptive",
         "extension: switches between supersetcon and supersetagg at "
         "run time"},
    };
    std::cout << "algorithms (--algorithms, or \"paper\" for the first "
                 "seven):\n";
    for (const AlgoDesc &a : algos)
        std::cout << "  " << std::left << std::setw(14) << a.name
                  << a.desc << '\n';

    std::cout << "topologies (--topology; docs/TOPOLOGY.md):\n"
              << "  " << std::left << std::setw(14) << "flat"
              << "one embedded ring over all nodes (the paper's "
                 "machine)\n"
              << "  " << std::left << std::setw(14) << "hier"
              << "local rings joined by a global ring via bridge "
                 "gateways;\n"
              << "  " << std::setw(14) << ""
              << "size with --local-rings N (nodes must divide evenly) "
                 "and\n"
              << "  " << std::setw(14) << ""
              << "--global-hop-cycles N; per-level algorithm via "
                 "global_algorithm=\n";

    struct SelectorDesc
    {
        const char *glob;
        const char *desc;
    };
    // Series families the sampler registers; --metrics select= globs
    // match against these names (docs/TELEMETRY.md).
    static const SelectorDesc selectors[] = {
        {"ctrl.*", "coherence-controller counters and in-flight gauges"},
        {"queue.*", "event-queue depth, horizon, and executed events"},
        {"ring<N>.*", "per-ring link traversals and busy-link occupancy"},
        {"net.*", "global-ring (hier) link traversals"},
        {"pred.*", "aggregated predictor accuracy and hit rate"},
        {"bridge.*", "bridge skip/descend counts (hier topology only)"},
        {"faults.*", "injected-fault counters (--faults only)"},
        {"mem.*", "memory-controller writebacks"},
        {"energy.*", "cumulative energy account (nJ)"},
    };
    std::cout << "metric series selectors (--metrics ...,select=GLOB; "
                 ".fsmetrics format v"
              << kMetricsVersion << "):\n";
    for (const SelectorDesc &s : selectors)
        std::cout << "  " << std::left << std::setw(14) << s.glob << s.desc
                  << '\n';
}

/**
 * Per-cell artifact path (traces, metrics): insert
 * "_<workload>_<algorithm>" before the extension of @p base (or append
 * it when there is none), so each cell of a sweep writes its own file.
 */
std::string
cellFilePath(const std::string &base, const std::string &workload,
             std::string_view algorithm)
{
    std::string suffix = "_" + workload + "_" + std::string(algorithm);
    const auto slash = base.find_last_of("/\\");
    const auto dot = base.find_last_of('.');
    if (dot == std::string::npos ||
        (slash != std::string::npos && dot < slash))
        return base + suffix;
    return base.substr(0, dot) + suffix + base.substr(dot);
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<Algorithm> algorithms = paperAlgorithms();
    std::vector<std::string> workloads = {"mini"};
    std::string predictor, trace_out, trace_in, csv_path, json_path;
    std::string faults_spec, trace_spec, metrics_spec, sweep_log_path;
    SweepHardening hardening;
    std::size_t refs = 0, warmup = SIZE_MAX;
    std::uint64_t watchdog_cycles = UINT64_MAX; // unset
    std::uint64_t max_retries = 0;              // unset
    std::size_t jobs = ParallelExecutor::defaultWorkers();
    std::vector<std::string> overrides;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                usage();
                std::exit(2);
            }
            return argv[++i];
        };
        try {
            if (arg == "--workloads") {
                workloads = splitCommas(next());
            } else if (arg == "--algorithms") {
                const std::string value = next();
                if (value == "paper") {
                    algorithms = paperAlgorithms();
                } else {
                    algorithms.clear();
                    for (const auto &name : splitCommas(value))
                        algorithms.push_back(algorithmFromName(name));
                }
            } else if (arg == "--predictor") {
                predictor = next();
            } else if (arg == "--refs") {
                refs = parseUnsignedArg(arg, next());
            } else if (arg == "--warmup") {
                warmup = parseUnsignedArg(arg, next());
            } else if (arg == "--jobs") {
                jobs = parseUnsignedArg(arg, next());
            } else if (arg == "--topology") {
                const std::string value = next();
                topologyKindFromName(value); // validate, with diagnostics
                overrides.push_back("topology=" + value);
            } else if (arg == "--local-rings") {
                overrides.push_back(
                    "local_rings=" +
                    std::to_string(parseUnsignedArg(arg, next())));
            } else if (arg == "--global-hop-cycles") {
                overrides.push_back(
                    "global_hop_cycles=" +
                    std::to_string(parseUnsignedArg(arg, next())));
            } else if (arg == "--trace-out") {
                trace_out = next();
            } else if (arg == "--trace-in") {
                trace_in = next();
            } else if (arg == "--trace") {
                trace_spec = next();
                TraceConfig::fromSpec(trace_spec); // validate early
            } else if (arg == "--metrics") {
                metrics_spec = next();
                MetricsConfig::fromSpec(metrics_spec); // validate early
            } else if (arg == "--sweep-log") {
                sweep_log_path = next();
            } else if (arg == "--csv") {
                csv_path = next();
            } else if (arg == "--json") {
                json_path = next();
            } else if (arg == "--faults") {
                faults_spec = next();
            } else if (arg == "--watchdog-cycles") {
                watchdog_cycles = parseUnsignedArg(arg, next());
            } else if (arg == "--max-retries") {
                max_retries = parseUnsignedArg(arg, next());
            } else if (arg == "--cell-timeout") {
                hardening.cellWallClockLimitSec =
                    parseDoubleArg(arg, next());
            } else if (arg == "--checkpoint") {
                hardening.checkpointPath = next();
            } else if (arg == "--dump-dir") {
                hardening.dumpDir = next();
            } else if (arg == "--list") {
                printList();
                return 0;
            } else if (arg == "--version") {
                printVersion();
                return 0;
            } else if (arg == "--help" || arg == "-h") {
                usage();
                return 0;
            } else if (arg.find('=') != std::string::npos) {
                overrides.push_back(arg);
            } else {
                std::cerr << "unknown argument: " << arg << '\n';
                usage();
                return 2;
            }
        } catch (const std::exception &e) {
            std::cerr << "error: " << e.what() << '\n';
            return 2;
        }
    }

    // Plan first, run second: configs are prepared serially (overrides
    // mutate them), then every (workload, algorithm) combination runs
    // as an independent job on the worker pool. Results keep plan
    // order, so the output is identical to the serial loop.
    struct PlannedRun
    {
        MachineConfig cfg;
        std::size_t traces;
        std::string workload;
    };
    std::vector<CoreTraces> all_traces;
    std::vector<PlannedRun> plan;
    std::vector<RunResult> results;

    // Any robustness switch routes the sweep through the hardened
    // runner (crash isolation, per-cell timeout, checkpoint/resume).
    const bool hardened_run = !faults_spec.empty() ||
                              hardening.cellWallClockLimitSec > 0 ||
                              !hardening.checkpointPath.empty() ||
                              !hardening.dumpDir.empty();
    try {
        FaultConfig fault_config;
        if (!faults_spec.empty())
            fault_config = FaultConfig::fromSpec(faults_spec);
        TraceConfig trace_config;
        if (!trace_spec.empty())
            trace_config = TraceConfig::fromSpec(trace_spec);
        MetricsConfig metrics_config;
        if (!metrics_spec.empty())
            metrics_config = MetricsConfig::fromSpec(metrics_spec);
        hardening.sweepLogPath = sweep_log_path;
        const std::size_t total_cells =
            workloads.size() * algorithms.size();

        for (const auto &workload : workloads) {
            WorkloadProfile profile = profileByName(workload);
            if (refs > 0)
                profile.refsPerCore = refs;
            if (warmup != SIZE_MAX)
                profile.warmupRefs = warmup;

            CoreTraces traces;
            if (!trace_in.empty()) {
                traces = loadTraces(trace_in);
            } else {
                traces = SyntheticGenerator(profile).generate();
            }
            if (!trace_out.empty())
                saveTraces(trace_out, traces);
            all_traces.push_back(std::move(traces));

            for (Algorithm algorithm : algorithms) {
                MachineConfig cfg = MachineConfig::paperDefault(
                    algorithm, profile.coresPerCmp);
                cfg.setNumCmps(profile.numCmps());
                applyOverrides(cfg, overrides);
                if (!predictor.empty() &&
                    cfg.predictor.kind != PredictorKind::None &&
                    cfg.predictor.kind != PredictorKind::Perfect) {
                    applyOverride(cfg, "predictor=" + predictor);
                }
                cfg.faults = fault_config;
                if (watchdog_cycles != UINT64_MAX)
                    cfg.coherence.watchdogCycles = watchdog_cycles;
                else if (cfg.faults.armed() &&
                         cfg.coherence.watchdogCycles == 0)
                    cfg.coherence.watchdogCycles = 20000;
                if (max_retries > 0)
                    cfg.coherence.maxRetries =
                        static_cast<unsigned>(max_retries);
                if (trace_config.enabled()) {
                    cfg.trace = trace_config;
                    if (total_cells > 1)
                        cfg.trace.path =
                            cellFilePath(trace_config.path, workload,
                                         toString(algorithm));
                }
                if (metrics_config.enabled()) {
                    cfg.metrics = metrics_config;
                    if (total_cells > 1)
                        cfg.metrics.path =
                            cellFilePath(metrics_config.path, workload,
                                         toString(algorithm));
                }
                std::cerr << "planned " << workload << " / "
                          << toString(algorithm) << '\n';
                plan.push_back(PlannedRun{std::move(cfg),
                                          all_traces.size() - 1,
                                          profile.name});
            }
        }

        std::cerr << "running " << plan.size() << " simulation(s) on "
                  << jobs << " worker(s)"
                  << (hardened_run ? " (hardened)" : "") << "...\n";
        if (!faults_spec.empty())
            std::cerr << "fault injection: " << fault_config.describe()
                      << '\n';
        if (trace_config.enabled())
            std::cerr << "event tracing: one .fstrace per cell "
                         "(decode with flexsnoop_trace)\n";
        if (metrics_config.enabled())
            std::cerr << "telemetry: one .fsmetrics per cell, interval "
                      << metrics_config.intervalCycles
                      << " (analyze with flexsnoop_metrics)\n";
        if (hardened_run) {
            // all_traces is complete here, so the pointers are stable.
            std::vector<PlannedCell> cells;
            cells.reserve(plan.size());
            for (const PlannedRun &run : plan) {
                cells.push_back(PlannedCell{run.cfg,
                                            &all_traces[run.traces],
                                            run.workload});
            }
            results = runCellsHardened(cells, jobs, hardening);
        } else {
            // The hardened runner owns the sweep log on its path; here
            // the plain parallel pool wraps each run with the same
            // start/finish events (a thrown cell aborts the sweep, so
            // per-cell failure statuses are the hardened runner's job).
            std::unique_ptr<SweepLog> sweep_log;
            if (!sweep_log_path.empty()) {
                sweep_log =
                    std::make_unique<SweepLog>(sweep_log_path, plan.size());
            }
            ParallelExecutor pool(jobs);
            results = pool.map(plan.size(), [&](std::size_t i) {
                const PlannedRun &run = plan[i];
                const std::string algorithm(
                    toString(run.cfg.algorithm));
                if (sweep_log) {
                    sweep_log->cellStart(i, run.workload, algorithm,
                                         run.cfg.predictor.id);
                }
                const auto t0 = std::chrono::steady_clock::now();
                RunResult r = runSimulation(
                    run.cfg, all_traces[run.traces], run.workload);
                if (sweep_log) {
                    sweep_log->cellFinish(
                        i, run.workload, algorithm, run.cfg.predictor.id,
                        SweepLog::Status::Ok,
                        std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count());
                }
                return r;
            });
            if (sweep_log)
                sweep_log->finish();
        }
    } catch (const std::exception &e) {
        std::cerr << "error: " << e.what() << '\n';
        return 1;
    }

    // Summary table.
    std::cout << std::left << std::setw(12) << "workload" << std::setw(14)
              << "algorithm" << std::right << std::setw(13)
              << "exec cycles" << std::setw(12) << "snoops/req"
              << std::setw(11) << "msgs/req" << std::setw(13)
              << "energy (uJ)" << std::setw(10) << "lat p50"
              << std::setw(10) << "lat p95" << '\n'
              << std::string(95, '-') << '\n';
    std::size_t failed_cells = 0;
    for (const auto &r : results) {
        if (r.failed) {
            ++failed_cells;
            std::cout << std::left << std::setw(12) << r.workload
                      << std::setw(14) << r.algorithm
                      << "  FAILED: " << r.error << '\n';
            continue;
        }
        std::cout << std::left << std::setw(12) << r.workload
                  << std::setw(14) << r.algorithm << std::right
                  << std::setw(13) << r.execCycles << std::fixed
                  << std::setprecision(2) << std::setw(12)
                  << r.snoopsPerReadRequest << std::setw(11)
                  << r.readLinkMessagesPerRequest << std::setprecision(1)
                  << std::setw(13) << r.energyNj / 1e3
                  << std::setprecision(0) << std::setw(10)
                  << r.p50ReadLatency << std::setw(10)
                  << r.p95ReadLatency << '\n';
    }

    if (!csv_path.empty()) {
        saveCsv(csv_path, results);
        std::cerr << "wrote " << csv_path << '\n';
    }
    if (!json_path.empty()) {
        saveJson(json_path, results);
        std::cerr << "wrote " << json_path << '\n';
    }
    if (failed_cells > 0) {
        std::cerr << failed_cells << " of " << results.size()
                  << " cell(s) failed\n";
        return 1;
    }
    return 0;
}
